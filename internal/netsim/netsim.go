// Package netsim is a discrete-event, packet-level simulator for layered
// multicast congestion control over arbitrary netmodel.Network graphs —
// the general engine of which sim (modified star, exogenous loss),
// treesim (loss trees) and capsim (capacity-coupled star) are thin
// special cases.
//
// The engine runs the paper's general network model N = (G, {S_i}, τ, Γ)
// forward in time: every session transmits the Section 4 exponential
// layer scheme from its sender; packets are forwarded down the session's
// multicast tree (the union of its receivers' data-paths) with idealized
// pruning — a packet enters a link iff some subscribed receiver below it
// wants its layer; each link applies a pluggable loss/queue model
// (LinkSpec): exogenous Bernoulli loss, capsim's fluid capacity-coupled
// drop, or a finite droptail queue with service rate, buffer, and
// propagation delay, optionally sharing its capacity with constant
// background cross-traffic (the TCP-over-ABR/UBR setting). Receivers run
// the protocol package's join/leave state machines; sessions may see
// membership churn (ChurnEvent). Losses are observed by every subscribed
// receiver below the dropping link at the drop instant (the paper's
// instant-feedback idealization); successful deliveries arrive after
// queueing and propagation delay when the link model has any.
//
// The measured outputs are per-receiver long-run throughput and the
// paper's Definition 3 redundancy per (link, session): the session's
// packet rate across the link divided by the best goodput among its
// receivers downstream of the link.
package netsim

import (
	"fmt"
	"math"
	"math/rand/v2"

	"mlfair/internal/layering"
	"mlfair/internal/netmodel"
	"mlfair/internal/protocol"
	"mlfair/internal/sim"
)

// SessionConfig sets one session's protocol parameters.
type SessionConfig struct {
	// Protocol is the join-coordination discipline.
	Protocol protocol.Kind
	// Layers is M, the depth of the exponential layer scheme.
	Layers int
}

// ChurnEvent toggles one receiver's session membership at a given time.
// A joining receiver starts fresh at the base layer; a leaving receiver
// stops receiving, stops counting for pruning, and contributes nothing
// to link demand until it rejoins.
type ChurnEvent struct {
	Time     float64
	Session  int
	Receiver int
	// Join is true for a (re-)join, false for a leave.
	Join bool
}

// Config parameterizes one run of the general engine.
type Config struct {
	// Network supplies the graph, the sessions (senders, receivers,
	// data-paths), and per-link capacities. Each session's data-paths
	// must form a multicast tree rooted at its sender (networks built by
	// routing.BuildNetwork always do); abstract Builder networks and
	// multi-sender sessions are rejected.
	Network *netmodel.Network
	// Links configures each link's loss/queue model, indexed like the
	// graph's links. Nil means every link is Perfect (lossless).
	Links []LinkSpec
	// Sessions configures each session's protocol, indexed like the
	// network's sessions.
	Sessions []SessionConfig
	// Packets is the total transmission budget summed over all senders.
	Packets int
	// SignalPeriod is the Coordinated protocols' base signal period
	// (0 = 1.0); one global signal clock drives all Coordinated sessions.
	SignalPeriod float64
	// Churn lists membership changes, in any order.
	Churn []ChurnEvent
	// Seed drives all randomness; equal seeds give identical runs.
	Seed uint64
}

// LinkStats is the per-(link, session) measurement.
type LinkStats struct {
	// Link is the graph link index; Session the session index.
	Link, Session int
	// Crossed counts the session's packets that entered the link
	// (consuming bandwidth even when the link itself drops them).
	Crossed int
	// Rate is Crossed over the run duration.
	Rate float64
	// Redundancy is Definition 3 on this link: Rate over the best
	// long-run goodput among the session's receivers downstream (0 when
	// no downstream receiver ever received).
	Redundancy float64
	// DownstreamReceivers is |R_{i,j}|, the session's receiver count on
	// the link.
	DownstreamReceivers int
}

// Result summarizes one run.
type Result struct {
	// ReceiverRates[i][k] is receiver r_{i,k}'s long-run goodput in
	// packets per time unit.
	ReceiverRates [][]float64
	// Links holds per-(link, session) stats for every link crossed by at
	// least one receiver of the session, in link-major order.
	Links []LinkStats
	// PacketsSent counts sender transmissions across all sessions.
	PacketsSent int
	// Duration is the simulated time.
	Duration float64
}

// LinkRedundancy returns the Definition 3 redundancy of a session on a
// link, or 0 if the session has no receivers across it.
func (r *Result) LinkRedundancy(link, session int) float64 {
	for _, ls := range r.Links {
		if ls.Link == link && ls.Session == session {
			return ls.Redundancy
		}
	}
	return 0
}

// SessionRedundancy returns the session's redundancy on its root link:
// the highest-rate link stats entry touching the session's sender-side
// tree, defined as the link carrying the most session packets. For a
// star or tree this is the link out of the sender.
func (r *Result) SessionRedundancy(session int) float64 {
	best := LinkStats{}
	for _, ls := range r.Links {
		if ls.Session == session && ls.Crossed >= best.Crossed {
			best = ls
		}
	}
	return best.Redundancy
}

func (c *Config) validate() error {
	if c.Network == nil {
		return fmt.Errorf("netsim: nil network")
	}
	if len(c.Sessions) != c.Network.NumSessions() {
		return fmt.Errorf("netsim: %d session configs for %d sessions", len(c.Sessions), c.Network.NumSessions())
	}
	if c.Links != nil && len(c.Links) != c.Network.NumLinks() {
		return fmt.Errorf("netsim: %d link specs for %d links", len(c.Links), c.Network.NumLinks())
	}
	for j, spec := range c.Links {
		if err := spec.validate(j, c.Network.Capacity(j)); err != nil {
			return err
		}
	}
	if c.Packets < 1 {
		return fmt.Errorf("netsim: Packets = %d", c.Packets)
	}
	if c.SignalPeriod < 0 {
		return fmt.Errorf("netsim: SignalPeriod = %v", c.SignalPeriod)
	}
	for i, sc := range c.Sessions {
		if sc.Layers < 1 {
			return fmt.Errorf("netsim: session %d: Layers = %d", i, sc.Layers)
		}
		s := c.Network.Session(i)
		if s.Sender < 0 {
			return fmt.Errorf("netsim: session %d has no concrete sender node (abstract networks are not simulable)", i)
		}
		if len(s.ExtraSenders) > 0 {
			return fmt.Errorf("netsim: session %d: multi-sender sessions are not supported", i)
		}
	}
	for ci, ev := range c.Churn {
		if ev.Time < 0 {
			return fmt.Errorf("netsim: churn %d at negative time %v", ci, ev.Time)
		}
		if ev.Session < 0 || ev.Session >= c.Network.NumSessions() {
			return fmt.Errorf("netsim: churn %d session %d out of range", ci, ev.Session)
		}
		if ev.Receiver < 0 || ev.Receiver >= c.Network.Session(ev.Session).NumReceivers() {
			return fmt.Errorf("netsim: churn %d receiver %d out of range", ci, ev.Receiver)
		}
	}
	return nil
}

// --- event heap ---

type evKind int8

const (
	evTransmit evKind = iota
	evForward
	evChurn
	evSignal
)

type event struct {
	time float64
	// prio breaks same-instant ties: packet events before signals,
	// reproducing sim's strict-inequality signal clock.
	prio int8
	seq  int64
	kind evKind

	sess, layer, node int
	churn             ChurnEvent
}

type eventHeap []event

func (h eventHeap) less(a, b int) bool {
	if h[a].time != h[b].time {
		return h[a].time < h[b].time
	}
	if h[a].prio != h[b].prio {
		return h[a].prio < h[b].prio
	}
	return h[a].seq < h[b].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(l, m) {
			m = l
		}
		if r < n && h.less(r, m) {
			m = r
		}
		if m == i {
			break
		}
		(*h)[i], (*h)[m] = (*h)[m], (*h)[i]
		i = m
	}
	return top
}

// --- per-session state ---

type edge struct {
	link, child int
}

// sessState carries one session's runtime state: its multicast tree over
// graph nodes, its receivers' protocol machines, and the subtree
// subscription maxima used for pruning and fluid demand.
type sessState struct {
	idx    int
	cfg    SessionConfig
	scheme layering.Scheme
	sender int
	period []float64

	childEdges [][]edge      // [node] outgoing tree edges
	parent     []int         // [node] parent node on the tree, -1 off-tree/root
	recvAt     map[int][]int // node -> receiver indices of this session

	receivers []*protocol.Receiver
	levels    []int // mirror; 0 while departed
	active    []bool
	// subMax[node] is the maximum subscription level among active
	// receivers at or below the node (0 when none) — the pruning test
	// and, via the layer scheme, the session's fluid demand below it.
	subMax []int

	received []int
}

func (s *sessState) bubble(nd int) {
	for cur := nd; ; cur = s.parent[cur] {
		m := 0
		for _, k := range s.recvAt[cur] {
			if s.levels[k] > m {
				m = s.levels[k]
			}
		}
		for _, ed := range s.childEdges[cur] {
			if s.subMax[ed.child] > m {
				m = s.subMax[ed.child]
			}
		}
		if s.subMax[cur] == m && cur != nd {
			return
		}
		s.subMax[cur] = m
		if cur == s.sender {
			return
		}
	}
}

// linkUser records that a session's tree crosses a link into child; the
// session's fluid demand on the link is its scheme's cumulative rate at
// subMax[child].
type linkUser struct {
	sess, child int
}

// --- engine ---

type engine struct {
	cfg   Config
	net   *netmodel.Network
	rng   *rand.Rand
	links []*linkState
	sess  []*sessState
	// linkUsers[j] lists the sessions whose tree crosses link j.
	linkUsers [][]linkUser
	// crossed[j][i] counts session i's packets entering link j.
	crossed [][]int

	heap      eventHeap
	seq       int64
	signalIdx int
	// signalPeriod is the resolved Coordinated signal period (the
	// config's zero-means-1 default applied once).
	signalPeriod float64
	now          float64
	sent         int
}

func newEngine(cfg Config) (*engine, error) {
	net := cfg.Network
	e := &engine{
		cfg:       cfg,
		net:       net,
		rng:       rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)),
		links:     make([]*linkState, net.NumLinks()),
		sess:      make([]*sessState, net.NumSessions()),
		linkUsers: make([][]linkUser, net.NumLinks()),
		crossed:   make([][]int, net.NumLinks()),
	}
	for j := range e.links {
		spec := LinkSpec{}
		if cfg.Links != nil {
			spec = cfg.Links[j]
		}
		e.links[j] = newLinkState(spec, net.Capacity(j))
		e.crossed[j] = make([]int, net.NumSessions())
	}
	g := net.Graph()
	for i := range e.sess {
		ns := net.Session(i)
		sc := cfg.Sessions[i]
		s := &sessState{
			idx: i, cfg: sc,
			scheme:     layering.Exponential(sc.Layers),
			sender:     ns.Sender,
			period:     make([]float64, sc.Layers),
			childEdges: make([][]edge, g.NumNodes()),
			parent:     make([]int, g.NumNodes()),
			recvAt:     map[int][]int{},
			receivers:  make([]*protocol.Receiver, ns.NumReceivers()),
			levels:     make([]int, ns.NumReceivers()),
			active:     make([]bool, ns.NumReceivers()),
			subMax:     make([]int, g.NumNodes()),
			received:   make([]int, ns.NumReceivers()),
		}
		for l := 0; l < sc.Layers; l++ {
			s.period[l] = 1 / s.scheme.LayerRate(l)
		}
		for nd := range s.parent {
			s.parent[nd] = -1
		}
		// Assemble the multicast tree from the receivers' data-paths.
		for k := range ns.Receivers {
			cur := ns.Sender
			for _, j := range net.Path(i, k) {
				nb := g.Other(j, cur)
				if p := s.parent[nb]; p == -1 {
					s.parent[nb] = cur
					s.childEdges[cur] = append(s.childEdges[cur], edge{link: j, child: nb})
					e.linkUsers[j] = append(e.linkUsers[j], linkUser{sess: i, child: nb})
				} else if p != cur {
					return nil, fmt.Errorf("netsim: session %d data-paths do not form a tree (node %d reached from %d and %d)", i, nb, p, cur)
				}
				cur = nb
			}
			s.recvAt[ns.Receivers[k]] = append(s.recvAt[ns.Receivers[k]], k)
		}
		for k := range s.receivers {
			s.receivers[k] = protocol.NewReceiver(sc.Protocol, sc.Layers, e.rng)
			s.levels[k] = 1
			s.active[k] = true
			s.bubble(ns.Receivers[k])
		}
		e.sess[i] = s
	}

	// Seed the clock: per-layer transmissions, the global signal, churn.
	for _, s := range e.sess {
		for l := 0; l < s.cfg.Layers; l++ {
			e.push(event{time: s.period[l], kind: evTransmit, sess: s.idx, layer: l})
		}
	}
	e.signalPeriod = cfg.SignalPeriod
	if e.signalPeriod == 0 {
		e.signalPeriod = 1
	}
	for _, s := range e.sess {
		if s.cfg.Protocol == protocol.Coordinated && s.cfg.Layers > 1 {
			e.push(event{time: e.signalPeriod, prio: 1, kind: evSignal})
			break
		}
	}
	for _, ev := range cfg.Churn {
		e.push(event{time: ev.Time, kind: evChurn, churn: ev})
	}
	return e, nil
}

func (e *engine) push(ev event) {
	ev.seq = e.seq
	e.seq++
	e.heap.push(ev)
}

func (e *engine) syncReceiver(s *sessState, k int) {
	nl := s.receivers[k].Level()
	if nl == s.levels[k] {
		return
	}
	s.levels[k] = nl
	s.bubble(e.net.Session(s.idx).Receivers[k])
}

// linkDemand sums the fluid demand of every session crossing the link:
// each contributes the cumulative rate of its maximum subscription level
// below the link (pruning-aware, exactly capsim's sharedDemand).
func (e *engine) linkDemand(j int) float64 {
	d := 0.0
	for _, u := range e.linkUsers[j] {
		s := e.sess[u.sess]
		d += s.scheme.CumulativeRate(s.subMax[u.child])
	}
	return d
}

// forward delivers a layer-l packet arriving at node at time t: hands it
// to subscribed receivers hosted there, then pushes it into each child
// link some subscribed receiver below still wants (idealized pruning).
// Instant links recurse inline; queued links schedule the continuation.
func (e *engine) forward(s *sessState, layer, node int, t float64) {
	for _, k := range s.recvAt[node] {
		if s.active[k] && s.levels[k] > layer {
			s.received[k]++
			s.receivers[k].OnReceive()
			e.syncReceiver(s, k)
		}
	}
	for _, ed := range s.childEdges[node] {
		if s.subMax[ed.child] <= layer {
			continue
		}
		e.crossed[ed.link][s.idx]++
		ls := e.links[ed.link]
		demand := 0.0
		if ls.spec.Kind == Capacity {
			demand = e.linkDemand(ed.link)
		}
		exit, dropped := ls.admit(t, demand, e.rng)
		if dropped {
			e.notifyLoss(s, layer, ed.child)
			continue
		}
		if exit <= t {
			e.forward(s, layer, ed.child, t)
		} else {
			e.push(event{time: exit, kind: evForward, sess: s.idx, layer: layer, node: ed.child})
		}
	}
}

// notifyLoss delivers a congestion observation to every subscribed
// receiver below a dropping link, at the drop instant (the paper's
// immediate-feedback idealization; links below a drop carry nothing).
func (e *engine) notifyLoss(s *sessState, layer, node int) {
	for _, k := range s.recvAt[node] {
		if s.active[k] && s.levels[k] > layer {
			s.receivers[k].OnCongestion()
			e.syncReceiver(s, k)
		}
	}
	for _, ed := range s.childEdges[node] {
		if s.subMax[ed.child] > layer {
			e.notifyLoss(s, layer, ed.child)
		}
	}
}

func (e *engine) applyChurn(ev ChurnEvent) {
	s := e.sess[ev.Session]
	k := ev.Receiver
	node := e.net.Session(ev.Session).Receivers[k]
	switch {
	case ev.Join && !s.active[k]:
		s.receivers[k] = protocol.NewReceiver(s.cfg.Protocol, s.cfg.Layers, e.rng)
		s.active[k] = true
		s.levels[k] = 1
		s.bubble(node)
	case !ev.Join && s.active[k]:
		s.active[k] = false
		s.levels[k] = 0
		s.bubble(node)
	}
}

// Run executes one simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	for e.sent < cfg.Packets {
		if len(e.heap) == 0 {
			return nil, fmt.Errorf("netsim: event queue drained before packet budget")
		}
		ev := e.heap.pop()
		e.now = ev.time
		switch ev.kind {
		case evTransmit:
			s := e.sess[ev.sess]
			e.sent++
			if s.subMax[s.sender] > ev.layer {
				e.forward(s, ev.layer, s.sender, e.now)
			}
			e.push(event{time: e.now + s.period[ev.layer], kind: evTransmit, sess: ev.sess, layer: ev.layer})
		case evForward:
			e.forward(e.sess[ev.sess], ev.layer, ev.node, e.now)
		case evChurn:
			e.applyChurn(ev.churn)
		case evSignal:
			e.signalIdx++
			for _, s := range e.sess {
				if s.cfg.Protocol != protocol.Coordinated || s.cfg.Layers < 2 {
					continue
				}
				lvl := sim.SignalLevel(e.signalIdx, s.cfg.Layers-1)
				for k, r := range s.receivers {
					if !s.active[k] {
						continue
					}
					r.OnSignal(lvl)
					e.syncReceiver(s, k)
				}
			}
			e.push(event{time: e.now + e.signalPeriod, prio: 1, kind: evSignal})
		}
	}
	return e.result(), nil
}

func (e *engine) result() *Result {
	res := &Result{
		ReceiverRates: make([][]float64, len(e.sess)),
		PacketsSent:   e.sent,
		Duration:      e.now,
	}
	for i, s := range e.sess {
		res.ReceiverRates[i] = make([]float64, len(s.received))
		if e.now <= 0 {
			continue
		}
		for k, n := range s.received {
			res.ReceiverRates[i][k] = float64(n) / e.now
		}
	}
	for j := 0; j < e.net.NumLinks(); j++ {
		for _, sr := range e.net.OnLink(j) {
			ls := LinkStats{
				Link: j, Session: sr.Session,
				Crossed:             e.crossed[j][sr.Session],
				DownstreamReceivers: len(sr.Receivers),
			}
			if e.now > 0 {
				ls.Rate = float64(ls.Crossed) / e.now
				best := 0.0
				for _, k := range sr.Receivers {
					if r := res.ReceiverRates[sr.Session][k]; r > best {
						best = r
					}
				}
				if best > 0 {
					ls.Redundancy = ls.Rate / best
				}
			}
			res.Links = append(res.Links, ls)
		}
	}
	return res
}

// MaxReceiverRate returns the largest goodput in the result (a
// convenience for Definition 3 style normalizations).
func (r *Result) MaxReceiverRate() float64 {
	best := math.Inf(-1)
	for _, rs := range r.ReceiverRates {
		for _, v := range rs {
			if v > best {
				best = v
			}
		}
	}
	if math.IsInf(best, -1) {
		return 0
	}
	return best
}
