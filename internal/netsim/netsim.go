// Package netsim is THE discrete-event, packet-level simulator for
// layered multicast congestion control over arbitrary netmodel.Network
// graphs: sim (modified star, exogenous loss), treesim (loss trees) and
// capsim (capacity-coupled star) are facades that compile their configs
// onto this engine and re-map its results, owning no event loop of
// their own.
//
// The engine runs the paper's general network model N = (G, {S_i}, τ, Γ)
// forward in time: every session transmits the Section 4 exponential
// layer scheme from its sender; packets are forwarded down the session's
// multicast tree (the union of its receivers' data-paths) with idealized
// pruning — a packet enters a link iff some subscribed receiver below it
// wants its layer; each link applies a pluggable loss/queue model
// (LinkSpec): exogenous Bernoulli loss, capsim's fluid capacity-coupled
// drop, or a finite droptail queue with service rate, buffer, and
// propagation delay, optionally sharing its capacity with constant
// background cross-traffic (the TCP-over-ABR/UBR setting). Receivers run
// the protocol package's join/leave state machines; sessions may see
// membership churn (ChurnEvent). Losses are observed by every subscribed
// receiver below the dropping link at the drop instant (the paper's
// instant-feedback idealization); successful deliveries arrive after
// queueing and propagation delay when the link model has any.
//
// The measured outputs are per-receiver long-run throughput and the
// paper's Definition 3 redundancy per (link, session): the session's
// packet rate across the link divided by the best goodput among its
// receivers downstream of the link.
//
// # Engine internals
//
// The hot path is allocation-free at steady state and sized for
// hundreds of links times dozens of sessions:
//
//   - Sender transmissions never touch the scheduler: the exponential
//     scheme's periods are dyadic, so each session's due layers at a
//     tick are the contiguous range given by the tick counter's
//     trailing zeros — one integer op per packet instead of a heap
//     round trip. The queue (32-byte events in a preallocated 4-ary
//     heap whose backing array is the event pool) holds only delayed
//     DropTail deliveries, churn, and the signal clock, with
//     same-instant ties broken on a packed (priority, sequence) key.
//   - Each session's multicast tree is renumbered in DFS pre-order and
//     flattened to CSR arrays; every tree edge is split into a 32-byte
//     hot record (admission class, capacity-row index, the entered
//     node's receiver and child blocks — everything the walk reads
//     every crossing, two edges per cache line in DFS order) and a
//     cold record (drop counter, geometric-sampling constant — read
//     only on refills and at result time), with the crossing and
//     loss-gap counters in dense parallel arrays, so a packet hop
//     touches half the cache footprint of the old fused 64-byte
//     record.
//   - Packet delivery is batched: one transmission drains the whole
//     multicast tree in a fused, iterative loop (reusable work stack,
//     tail-descent into the first eligible child), delivering and
//     deciding admission inline; sessions whose links are all
//     Perfect/Bernoulli take a variant with the admission switch
//     compiled out.
//   - Bernoulli drops are realized by geometric inter-drop gap counters
//     (one RNG draw per drop, not per crossing — the identical law;
//     links with layer-dependent loss tables fall back to a direct draw
//     per crossing), and the protocol state machines are flattened into
//     parallel arrays with their transitions inlined (mirroring
//     protocol.Receiver exactly; the protocol package's unit tests and
//     the facades' behavioral suites guard the equivalence).
//   - The paper's "maximum joined layer below a link" is maintained
//     incrementally: each node keeps per-level contribution counts in a
//     power-of-two-stride row (single-contribution nodes skip even
//     that), and a receiver level change updates only the O(depth) path
//     to the root, stopping at the first node whose maximum stands.
//     Wide nodes (fan-out > 16, the star-hub pattern) additionally keep
//     their child edges counting-sorted by descending subtree level so
//     forwarding enumerates exactly the children that still want the
//     layer; narrow nodes scan a dense per-edge mirror instead.
//   - Per-link fluid demand for Capacity links is maintained
//     incrementally as subscriptions move (exact for the power-of-two
//     exponential scheme), so admission is O(1); congestion
//     notification uses precomputed per-edge downstream-receiver lists
//     instead of re-walking the dropped subtree.
//
// Determinism contract: a Config's results are a pure function of its
// fields including Seed. All randomness flows from one PCG stream whose
// consumption order is fixed by the engine's total event order (heap
// order, then transmissions session- and layer-ascending, then signals)
// and the deterministic child order within a packet's tree walk, so
// equal configs give bit-identical Results on any platform and any
// replication-worker count.
package netsim

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"

	"mlfair/internal/layering"
	"mlfair/internal/netmodel"
	"mlfair/internal/protocol"
)

// MaxLayers bounds SessionConfig.Layers: the protocol package's join
// thresholds 2^(2(M-1)) overflow int64 beyond 32 layers, and the
// engine's dyadic transmit calendar needs the layer-period ratios to
// fit a uint64 tick counter. The paper uses at most 10.
const MaxLayers = 32

// wideFanout is the child count above which a node's edge block is kept
// counting-sorted for output-sensitive enumeration; at or below it, a
// linear scan of the dense edgeSub mirror is cheaper than maintaining
// the ordering.
const wideFanout = 16

// SessionConfig sets one session's protocol parameters.
type SessionConfig struct {
	// Protocol is the join-coordination discipline.
	Protocol protocol.Kind
	// Layers is M, the depth of the exponential layer scheme (1..MaxLayers).
	Layers int
}

// ChurnEvent toggles one receiver's session membership at a given time.
// A joining receiver starts fresh at the base layer; a leaving receiver
// stops receiving, stops counting for pruning, and contributes nothing
// to link demand until it rejoins.
type ChurnEvent struct {
	Time     float64
	Session  int
	Receiver int
	// Join is true for a (re-)join, false for a leave.
	Join bool
}

// Config parameterizes one run of the general engine.
type Config struct {
	// Network supplies the graph, the sessions (senders, receivers,
	// data-paths), and per-link capacities. Each session's data-paths
	// must form a multicast tree rooted at its sender (networks built by
	// routing.BuildNetwork always do); abstract Builder networks and
	// multi-sender sessions are rejected.
	Network *netmodel.Network
	// Links configures each link's loss/queue model, indexed like the
	// graph's links. Nil means every link is Perfect (lossless).
	Links []LinkSpec
	// Sessions configures each session's protocol, indexed like the
	// network's sessions.
	Sessions []SessionConfig
	// Packets is the total transmission budget summed over all senders.
	Packets int
	// SignalPeriod is the Coordinated protocols' base signal period
	// (0 = 1.0); one global signal clock drives all Coordinated sessions.
	SignalPeriod float64
	// Churn lists membership changes, in any order.
	Churn []ChurnEvent
	// Probe turns on streaming observation windows (ProbeConfig): the
	// run is sampled into Result.Probe. Nil means no probing. Probing
	// never changes dynamics: every other Result field is bit-identical
	// with probes on or off.
	Probe *ProbeConfig
	// Stats, when non-nil, receives the run's engine statistics
	// (cumulative atomic counters — see EngineStats). The same sink may
	// be shared by concurrent replications. Stats never change dynamics:
	// every Result field is bit-identical with stats on or off, and the
	// counters are flushed once at the end of the run, not per event.
	Stats *EngineStats
	// Shards selects the event-loop execution mode. 0 (the default) is
	// the sequential engine: one event loop, one RNG stream — the
	// committed-golden code path. Any value >= 1 enables session-sharded
	// execution: sessions whose multicast trees share no link (computed
	// by union-find over link sets) run as independent event loops on up
	// to Shards concurrent goroutines, each with its own calendar and a
	// per-group RNG stream derived from Seed, merged deterministically at
	// result time. A group holding one giant session is additionally
	// decomposed below a cut frontier into link-disjoint subtrees that
	// fan out across workers (see subtree.go and CutLinks). The Result
	// is a pure function of the Config alone — every Shards >= 1 yields
	// the identical Result, so the value only tunes parallelism, never
	// output.
	Shards int
	// CutLinks, under Shards >= 1, names the links whose tree edges form
	// the subtree-sharding cut frontier for single-session shard groups
	// (for the planetary topology: the access links below firstAccess).
	// Empty selects an automatic cost-balanced frontier from per-subtree
	// receiver counts. Like Shards itself, CutLinks only shapes the
	// parallel decomposition — every frontier yields the same Result for
	// a given Config; it is ignored at Shards == 0.
	CutLinks []int
	// MemBudget, when positive, caps the engine's planned peak memory in
	// bytes: Run calls PlanMemory first and fails fast — before any
	// large allocation — when the plan exceeds the budget. 0 disables
	// the check.
	MemBudget int64
	// LeaveLatency models slow IGMP-style leave processing (the paper's
	// Section 5 concern): after the highest subscription below a link
	// drops, the link keeps carrying the abandoned layers for this many
	// time units. Lingering crossings consume link bandwidth (they count
	// in LinkStats.Crossed) but deliver nothing, observe no losses, and
	// draw no randomness — so receiver dynamics at equal seeds are
	// identical across latencies, exactly the sim package's historical
	// contract.
	LeaveLatency float64
	// Seed drives all randomness; equal seeds give identical runs.
	Seed uint64
}

// LinkStats is the per-(link, session) measurement.
type LinkStats struct {
	// Link is the graph link index; Session the session index.
	Link, Session int
	// Crossed counts the session's packets that entered the link
	// (consuming bandwidth even when the link itself drops them).
	Crossed int
	// Rate is Crossed over the run duration.
	Rate float64
	// Redundancy is Definition 3 on this link: Rate over the best
	// long-run goodput among the session's receivers downstream (0 when
	// no downstream receiver ever received).
	Redundancy float64
	// DownstreamReceivers is |R_{i,j}|, the session's receiver count on
	// the link.
	DownstreamReceivers int
	// Dropped counts the session's packets this link itself dropped
	// (Crossed includes them: a dropped packet still consumed the link).
	Dropped int
	// FluidRate is the session's time-average fluid demand on the link:
	// the integral of the cumulative scheme rate of the highest
	// subscription level below the link, over the run duration. This is
	// the u_{i,j} the paper's fluid analysis assigns to the session, the
	// quantity the capacity-coupled drop law meters, and what the capsim
	// facade reports as SessionLinkRates.
	FluidRate float64
}

// Result summarizes one run.
type Result struct {
	// ReceiverRates[i][k] is receiver r_{i,k}'s long-run goodput in
	// packets per time unit.
	ReceiverRates [][]float64
	// ReceiverPackets[i][k] is the exact delivered-packet count behind
	// ReceiverRates (the invariant-test currency: deliveries can never
	// exceed the packets that crossed any link on the receiver's path).
	ReceiverPackets [][]int
	// FinalLevels[i][k] is r_{i,k}'s subscription level when the run
	// ended: in [1, Layers] while joined, 0 after a churn departure.
	FinalLevels [][]int
	// MeanLevels[i] is session i's time-average subscription level,
	// averaged across its receivers (receivers departed by churn count
	// level 0 while away) — the sim package's MeanLevel diagnostic on
	// the general engine.
	MeanLevels []float64
	// Links holds per-(link, session) stats for every link crossed by at
	// least one receiver of the session, in link-major order.
	Links []LinkStats
	// Probe holds the run's retained observation windows (nil unless
	// Config.Probe was set).
	Probe *ProbeSeries
	// PacketsSent counts sender transmissions across all sessions.
	PacketsSent int
	// Duration is the simulated time.
	Duration float64
	// Events counts engine events processed — sender transmissions,
	// scheduled-event pops, per-link packet admissions, and receiver
	// deliveries (the denominator of the benchmark suite's events/sec
	// and allocs/event metrics).
	Events int64
}

// LinkRedundancy returns the Definition 3 redundancy of a session on a
// link, or 0 if the session has no receivers across it.
func (r *Result) LinkRedundancy(link, session int) float64 {
	for _, ls := range r.Links {
		if ls.Link == link && ls.Session == session {
			return ls.Redundancy
		}
	}
	return 0
}

// SessionRedundancy returns the session's redundancy on its root link:
// the highest-rate link stats entry touching the session's sender-side
// tree, defined as the link carrying the most session packets. For a
// star or tree this is the link out of the sender.
func (r *Result) SessionRedundancy(session int) float64 {
	best := LinkStats{}
	for _, ls := range r.Links {
		if ls.Session == session && ls.Crossed >= best.Crossed {
			best = ls
		}
	}
	return best.Redundancy
}

func (c *Config) validate() error {
	if c.Network == nil {
		return fmt.Errorf("netsim: nil network")
	}
	if len(c.Sessions) != c.Network.NumSessions() {
		return fmt.Errorf("netsim: %d session configs for %d sessions", len(c.Sessions), c.Network.NumSessions())
	}
	if c.Links != nil && len(c.Links) != c.Network.NumLinks() {
		return fmt.Errorf("netsim: %d link specs for %d links", len(c.Links), c.Network.NumLinks())
	}
	for j, spec := range c.Links {
		if err := spec.validate(j, c.Network.Capacity(j)); err != nil {
			return err
		}
	}
	if c.Packets < 1 {
		return fmt.Errorf("netsim: Packets = %d", c.Packets)
	}
	if c.SignalPeriod < 0 || math.IsInf(c.SignalPeriod, 0) || math.IsNaN(c.SignalPeriod) {
		return fmt.Errorf("netsim: SignalPeriod = %v", c.SignalPeriod)
	}
	if !(c.LeaveLatency >= 0) || math.IsInf(c.LeaveLatency, 0) {
		return fmt.Errorf("netsim: LeaveLatency = %v", c.LeaveLatency)
	}
	if c.Shards < 0 {
		return fmt.Errorf("netsim: Shards = %d", c.Shards)
	}
	if c.MemBudget < 0 {
		return fmt.Errorf("netsim: MemBudget = %d", c.MemBudget)
	}
	if c.Probe != nil {
		if err := c.Probe.validate(); err != nil {
			return err
		}
	}
	for _, j := range c.CutLinks {
		if j < 0 || j >= c.Network.NumLinks() {
			return fmt.Errorf("netsim: CutLinks entry %d out of range [0, %d)", j, c.Network.NumLinks())
		}
	}
	for i, sc := range c.Sessions {
		if sc.Layers < 1 {
			return fmt.Errorf("netsim: session %d: Layers = %d", i, sc.Layers)
		}
		if sc.Layers > MaxLayers {
			return fmt.Errorf("netsim: session %d: Layers = %d exceeds MaxLayers = %d", i, sc.Layers, MaxLayers)
		}
		s := c.Network.Session(i)
		if s.Sender < 0 {
			return fmt.Errorf("netsim: session %d has no concrete sender node (abstract networks are not simulable)", i)
		}
		if len(s.ExtraSenders) > 0 {
			return fmt.Errorf("netsim: session %d: multi-sender sessions are not supported", i)
		}
	}
	for ci, ev := range c.Churn {
		if ev.Time < 0 || math.IsInf(ev.Time, 0) || math.IsNaN(ev.Time) {
			return fmt.Errorf("netsim: churn %d at negative time %v", ci, ev.Time)
		}
		if ev.Session < 0 || ev.Session >= c.Network.NumSessions() {
			return fmt.Errorf("netsim: churn %d session %d out of range", ci, ev.Session)
		}
		if ev.Receiver < 0 || ev.Receiver >= c.Network.Session(ev.Session).NumReceivers() {
			return fmt.Errorf("netsim: churn %d receiver %d out of range", ci, ev.Receiver)
		}
	}
	return nil
}

// --- pooled event queue ---

type evKind int8

const (
	evForward evKind = iota
	evChurn
	evSignal
)

// event is a compact 32-byte value. Same-instant ties break on key,
// which packs the priority class (packet events before signals,
// reproducing sim's strict-inequality signal clock) above a monotone
// push sequence number. Sender transmissions never enter the queue —
// they live on the per-session calendar (see sessState.txNext) — so at
// steady state the queue holds only delayed deliveries, churn, and the
// signal clock.
type event struct {
	time float64
	key  uint64
	sess int32
	// layer is the packet layer; node is the arrival node for evForward
	// and the Config.Churn index for evChurn.
	layer, node int32
	kind        evKind
}

const prioSignal = uint64(1) << 56

// eventQueue is an implicit 4-ary min-heap over a preallocated event
// arena: push/pop move 32-byte values inside the backing array, which
// doubles as the event pool — no node allocations, and no appends once
// the high-water mark is reached. 4-ary beats binary here because the
// shallower tree costs fewer value moves per operation on small
// payloads.
type eventQueue struct {
	a []event
}

func evLess(x, y *event) bool {
	if x.time != y.time {
		return x.time < y.time
	}
	return x.key < y.key
}

func (q *eventQueue) push(ev event) {
	q.a = append(q.a, ev)
	i := len(q.a) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !evLess(&q.a[i], &q.a[p]) {
			break
		}
		q.a[i], q.a[p] = q.a[p], q.a[i]
		i = p
	}
}

func (q *eventQueue) pop() event {
	a := q.a
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	q.a = a[:n]
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		m := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if evLess(&a[c], &a[m]) {
				m = c
			}
		}
		if !evLess(&a[m], &a[i]) {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}

// --- per-session state ---

// hotEdge is the walk-side half of a multicast-tree edge: exactly the
// 32 bytes the fused forwarding loop reads on every crossing — the
// graph link, the resolved capacity-row index, the entered node's
// receiver and child-edge CSR blocks, its bucket-boundary row offset,
// and the packed admission class / wide-child flag. Records sit in DFS
// pre-order, two per cache line, so an irregular descent streams
// contiguous lines instead of striding 64-byte fused records. The
// entered node id is not stored: it is gtOff >> rowShift, needed only
// on the rare DropTail continuation path.
//
// Everything the walk touches rarely lives elsewhere: drop counters
// and the geometric-sampling constant in coldEdge (read on drops and
// gap refills only), the crossing counter and inter-drop gap in dense
// parallel int64 arrays (sessState.crossed / lossGap — written every
// crossing resp. every lossy crossing, deliberately not inflating this
// record), and the child's subscription maximum in the edgeSub mirror
// narrow-node scans already stream.
type hotEdge struct {
	link int32
	// capIdx indexes engine.capDem: the edge's own link for Capacity
	// edges, the always-admit sentinel row for every other kind (so
	// subscription-driven demand updates stay branch-free).
	capIdx         int32
	recvLo, recvHi int32 // child's block in recvList
	edgeLo, edgeHi int32 // child's own block in hot/order
	gtOff          int32 // child << rowShift: child's row in gt
	// meta packs the admission class (ek*, low bits under metaKindMask)
	// with the metaWide flag: whether the entered child is a wide node,
	// hoisted here so the descent never loads the node-indexed wide[].
	meta uint32
}

const (
	metaKindMask uint32 = 0x7
	metaWide     uint32 = 1 << 3
	// metaCut marks a subtree-sharding cut edge (see subtree.go): the
	// core walk fixes its admission outcome but never descends through
	// it — the subtree below runs in the parallel fan-out phase.
	metaCut uint32 = 1 << 4
)

// coldEdge is the accounting half of a tree edge: fields the walk
// touches only on drops (rare by construction) or at result time.
type coldEdge struct {
	// invLog is 1/log(1-loss) for a lossy Bernoulli link: the constant
	// factor of geometric inter-drop sampling, precomputed so a drop
	// costs one log instead of two.
	invLog float64
	drops  int64 // session packets this link dropped
}

// buildEdge is the construction-time edge seed (global node ids) that
// newEngine's tree discovery accumulates before the hot/cold split is
// laid out in DFS order.
type buildEdge struct {
	link, child int32
	kind        int8
	invLog      float64
}

// Admission classes, resolved from LinkKind at build time: lossless
// Bernoulli links collapse into the always-admit class.
const (
	ekAlways    int8 = iota // Perfect, or Bernoulli with zero loss
	ekBernoulli             // lossy Bernoulli: geometric gap thinning
	ekLayerLoss             // Bernoulli with per-layer loss: direct draw per crossing
	ekCapacity
	ekDropTail
)

// sessState carries one session's runtime state in flat, index-addressed
// arrays: the multicast tree (CSR), receiver placement (CSR), the
// receivers' protocol state (parallel arrays), and the per-node
// subscription aggregation that drives pruning and fluid demand.
//
// Node ids here are session-internal: the tree's nodes are renumbered
// in DFS pre-order (sender = 0) when the engine is built, so a packet's
// traversal touches edgeStart/gt/recvStart/subMax rows in nearly
// sequential memory order, and the arrays are sized by the session's
// tree rather than the whole graph.
//
// Subscription aggregation: each node nd aggregates "contributions" —
// the levels of the session's active receivers hosted at nd plus the
// subtree maxima subMax[child] of its tree children. lvlCnt counts
// contributions per level; subMax[nd], the highest populated level, is
// nudged incrementally (up when a contribution overtakes it, down by a
// same-row scan when its slot empties). A contribution change therefore
// costs O(1) per node and propagates only while the node's maximum
// actually moves.
//
// Child ordering (wide nodes): within a wide node's CSR edge block,
// order[] keeps the children counting-sorted by descending subMax.
// gt[nd][v] counts the node's children with subMax > v, so the children
// wanting layer l are exactly order[start : start+gt[nd][l]] —
// forwarding is output-sensitive. A child moving between adjacent
// levels is one swap plus one boundary bump. Narrow nodes skip all of
// this and scan edgeSub directly.
type sessState struct {
	idx    int
	cfg    SessionConfig
	scheme layering.Scheme
	m      int32     // layers (M); the sender is pre-order node 0
	period []float64 // [layer] inter-packet time
	cum    []float64 // [0..M] cumulative scheme rate

	// Transmit calendar. The exponential scheme's periods are dyadic:
	// layer l >= 1 fires every 2^(M-1-l) ticks of the finest layer's
	// clock and layer 0 shares layer 1's period, so the layers due at
	// tick n are exactly the contiguous range [M-1-TrailingZeros(n),
	// M-1] (clamped, and pulled down to 0 when it reaches 1). One
	// counter and one TrailingZeros replace a heap round trip per
	// packet; times are n*tickDt, exact in float64. The next
	// transmission instant lives in engine.txCal, not here.
	tick   uint64  // finest-layer ticks elapsed
	tickDt float64 // period of layer M-1
	// nAtLevel[v] counts receivers currently at subscription level v,
	// letting the signal clock skip sessions with no receiver at or
	// below the signal level.
	nAtLevel []int32

	// Tree topology, CSR over nodes. Edges of node nd occupy
	// hot[edgeStart[nd]:edgeStart[nd+1]]; edge ids index hot, cold,
	// crossed, lossGap, order positions, pos, and edgeSub.
	edgeStart []int32
	hot       []hotEdge
	cold      []coldEdge
	// crossed[eid] counts session packets that entered the link at edge
	// eid; lossGap[eid] is a Bernoulli edge's crossings-until-next-drop
	// counter (0 = draw on the next crossing). Per-edge rather than
	// per-link: Bernoulli drops are i.i.d. per crossing, so thinning
	// each session's crossing substream with its own geometric stream
	// realizes exactly the same law as a shared per-link coin.
	crossed    []int64
	lossGap    []int64
	parent     []int32 // [node] tree parent, -1 off-tree/root
	parentEdge []int32 // [node] edge id entering the node, -1 off-tree/root
	// Child enumeration is hybrid by fan-out. Narrow nodes (fan-out <=
	// wideFanout) scan edgeSub — a dense edge-indexed mirror of the
	// child's subMax — linearly; that is a couple of cache lines and
	// needs no order maintenance. Wide nodes (the star hub pattern)
	// additionally keep their edge block counting-sorted by descending
	// subMax (order/pos/gt), so forwarding touches exactly the eligible
	// children instead of the full list.
	wide    []bool  // [node] fan-out > wideFanout
	edgeSub []int32 // [edge id] subMax of the edge's child
	order   []int32 // per-node permutation of edge ids, desc by subMax
	pos     []int32 // [edge id] position in order
	gt      []int32 // [(node<<rowShift)+v] children with subMax > v

	// Receiver placement CSR: receivers hosted at node nd are
	// recvList[recvStart[nd]:recvStart[nd+1]].
	recvStart []int32
	recvList  []int32
	recvNode  []int32 // [receiver] hosting node

	// Receiver protocol state, flattened from protocol.Receiver into
	// parallel arrays so the delivery loop touches two cache lines
	// instead of one heap object per receiver. The transition logic
	// mirrors protocol.Receiver exactly (the sim/treesim/capsim
	// cross-check tests guard the equivalence): levels[k] is the joined
	// layer count (0 while departed), countdown[k] the packets left
	// until the next Deterministic/Uncoordinated join, clean[k] the
	// Coordinated no-congestion-since-last-opportunity window.
	levels    []int32
	countdown []int64
	clean     []bool
	received  []int

	// Per-edge fluid-usage accounting: fluidInt[eid] integrates the
	// cumulative scheme rate of the edge's subtree maximum over time
	// (advanced lazily at each subMax move, flushed at the end of the
	// run), fluidT[eid] the instant it was last advanced. Pure
	// accounting: no randomness, no effect on event order.
	fluidInt []float64
	fluidT   []float64

	// Mean-level accounting: sumLevel is the current sum of all receiver
	// levels, levelInt its time integral (advanced lazily like fluidInt).
	sumLevel int64
	levelInt float64
	levelT   float64

	// linger[(eid<<rowShift)+l] is the instant until which edge eid
	// keeps carrying layer l after its subtree abandoned it (nil unless
	// Config.LeaveLatency > 0). Sessions with linger enabled route
	// through forwardLinger, which checks these rows for unsubscribed
	// edges.
	linger []float64

	subMax []int32 // [node] max contribution level in the subtree
	// lvlCnt[(node<<rowShift)+v] counts contributions at level v
	// (v >= 1). Rows are power-of-two int32 strides so a node's whole
	// count row sits in one or two cache lines and the row offset is a
	// shift; the maximum is recovered by scanning the row downward (at
	// most M slots, same line) instead of keeping a separate bitmask.
	lvlCnt   []int32
	rowShift uint8
	// solo[nd] marks nodes with exactly one contribution (one hosted
	// receiver and no children, or one child and no receivers — leaves
	// and chain nodes): their maximum IS that contribution, so level
	// propagation skips the counting machinery there.
	solo []bool
	// lossOnly marks trees carrying only instant loss links, routed to
	// the specialized forwardLossOnly walk; capOnly marks trees of
	// Perfect/Capacity links only (the irregular-topology benchmark
	// shape), routed to forwardCapOnly. Mutually exclusive: a pure
	// Perfect tree counts as lossOnly.
	lossOnly bool
	capOnly  bool

	// downRecv CSR: downRecv[downStart[eid]:downStart[eid+1]] lists the
	// receivers downstream of edge eid in DFS order — the congestion
	// notification set of a drop on that edge, scanned directly instead
	// of re-walking the subtree.
	downStart []int32
	downRecv  []int32
}

// reorder moves edge eid within its (wide) parent node p's
// counting-sorted block from bucket om to bucket nm, one
// adjacent-bucket swap at a time.
func (s *sessState) reorder(eid, p, om, nm int32) {
	base := s.edgeStart[p]
	row := p << s.rowShift
	for v := om; v < nm; v++ {
		// First slot of bucket v becomes the last slot of bucket v+1.
		tgt := base + s.gt[row+v]
		s.swapOrder(s.pos[eid], tgt)
		s.gt[row+v]++
	}
	for v := om; v > nm; v-- {
		// Last slot of bucket v becomes the first slot of bucket v-1.
		tgt := base + s.gt[row+v-1] - 1
		s.swapOrder(s.pos[eid], tgt)
		s.gt[row+v-1]--
	}
}

func (s *sessState) swapOrder(i, j int32) {
	if i == j {
		return
	}
	s.order[i], s.order[j] = s.order[j], s.order[i]
	s.pos[s.order[i]] = i
	s.pos[s.order[j]] = j
}

// --- engine ---

type engine struct {
	cfg Config
	net *netmodel.Network
	rng *rand.Rand
	// links holds per-link queue state; allocated only when some spec is
	// DropTail (the only kind with mutable link state), so the engine's
	// footprint never scales with raw link count on queue-free networks.
	links []linkState
	sess  []sessState
	// gsess maps the engine's local session index to the network's
	// global session index. Nil means identity: the engine owns every
	// session (the sequential path). Sharded group engines own a subset.
	gsess   []int
	numSess int
	// churn is the engine's churn schedule with ChurnEvent.Session
	// rewritten to local session indices (the sequential engine aliases
	// cfg.Churn unchanged; group engines carry their filtered slice).
	churn []ChurnEvent
	// capDem packs capacity-admission rows — current fluid demand (sum
	// over sessions crossing the link of cum[subMax[child]], maintained
	// incrementally as subscriptions move; exact for the power-of-two
	// exponential scheme, every partial sum an integer below 2^53),
	// constant background load, and capacity — into 24-byte records so
	// admission touches one cache line instead of three parallel arrays.
	// The slice is dense over the Capacity-kind links only (hotEdge.capIdx
	// carries the remapped row index), sized numCapacityLinks+1: the last
	// row is the always-admit sentinel (capacity +Inf) that non-Capacity
	// edges point their capIdx at. The demand deltas the subscription
	// machinery blindly adds to the sentinel are write-only (nothing ever
	// admits against infinite capacity), which keeps applyLevelChange
	// branch-free. Demand maintenance is skipped entirely (trackDemand
	// false) when no link is capacity-coupled, since nothing would read
	// it. Every engine owns its rows outright, so sharded group engines
	// never share a sentinel cache line.
	capDem      []capDemand
	capSentinel int32
	trackDemand bool
	// linkLayerLoss[j] is link j's per-layer Bernoulli loss table,
	// indexed by graph link; nil unless some spec sets LayerLoss (the
	// tables themselves alias the spec's).
	linkLayerLoss [][]float64
	leaveLatency  float64

	q   eventQueue
	seq uint64
	// fwdStack is forward's reusable DFS work stack of edge ids.
	fwdStack []int32
	// probe is the streaming observation state (nil when off); all its
	// buffers are preallocated, so the hot path pays one nil check per
	// event and nothing else.
	probe *probeState
	// part is the intra-session subtree decomposition (subtree.go); non-nil
	// only on single-session shard-group engines whose tree was cut.
	part *treePartition

	// Uniform-calendar fast path: when every session shares one tick
	// period (equal layer counts — the common case, and all of the
	// committed benchmarks), the sessions' calendars advance in lockstep
	// and the "earliest txMin, lowest index" rule the transmit loop
	// needs is exactly round-robin order: sessions calCursor..S-1 sit at
	// time T and 0..calCursor-1 at T+dt, so the minimum is always
	// calCursor. Tracking it incrementally replaces the O(sessions)
	// argmin scan per calendar tick — the dominant cost on hub-heavy
	// multi-session topologies — with O(1), mirroring how the solo-node
	// shortcut replaces the subscription count row. Mixed-period session
	// sets fall back to the scan.
	calUniform bool
	calCursor  int
	// txCal[i] is session i's next transmission instant, (tick+1)*tickDt
	// — kept dense (rather than inside sessState) so the per-tick argmin
	// peek touches a handful of cache lines instead of one line per
	// session's sprawling state record.
	txCal []float64

	signalIdx int
	// signalPeriod is the resolved Coordinated signal period (the
	// config's zero-means-1 default applied once).
	signalPeriod float64
	now          float64
	sent         int
	pops         int64
	// Observability tallies (see EngineStats): pops split by kind, the
	// queue's occupancy high-water mark, and calendar ticks fired.
	// Maintained unconditionally — they ride events that already go
	// through the scheduler or the calendar bookkeeping, never the
	// per-crossing hot path — and flushed to cfg.Stats at result time.
	popForward, popChurn, popSignal int64
	ticksFired                      int64
	heapHW                          int
}

func newEngine(cfg Config) (*engine, error) {
	return newEngineFor(cfg, nil, cfg.Churn, cfg.Seed)
}

// newEngineFor builds an engine that owns a subset of the network's
// sessions. sessIDs lists the owned sessions by global index in
// ascending order (nil means all of them — the sequential path, which
// must stay exactly the historical engine); churn is the schedule with
// ChurnEvent.Session already rewritten to local indices (the caller
// filters it for group engines); seed feeds the engine's private PCG
// stream. Everything the engine allocates is sized by its own sessions'
// trees, so disjoint group engines partition — not duplicate — the
// sequential engine's memory.
func newEngineFor(cfg Config, sessIDs []int, churn []ChurnEvent, seed uint64) (*engine, error) {
	net := cfg.Network
	g := net.Graph()
	numSess := net.NumSessions()
	if sessIDs != nil {
		numSess = len(sessIDs)
	}
	e := &engine{
		cfg:     cfg,
		net:     net,
		rng:     rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		sess:    make([]sessState, numSess),
		gsess:   sessIDs,
		churn:   churn,
		numSess: numSess,
	}
	e.leaveLatency = cfg.LeaveLatency
	// One pass over the specs decides which per-link structures exist at
	// all: queue state only when some link is DropTail (the only kind
	// with mutable per-link state), loss tables only when some spec sets
	// LayerLoss, and capacity rows dense over the Capacity links alone —
	// so a 10M-receiver access fan-out of Perfect links costs zero
	// per-link engine state.
	anyDropTail, anyLayerLoss, numCap := false, false, 0
	for j := range cfg.Links {
		switch cfg.Links[j].Kind {
		case DropTail:
			anyDropTail = true
		case Capacity:
			numCap++
		}
		if cfg.Links[j].LayerLoss != nil {
			anyLayerLoss = true
		}
	}
	// The extra row is the always-admit sentinel non-Capacity edges
	// alias via capIdx; capRemap translates graph link -> dense row.
	e.capSentinel = int32(numCap)
	e.capDem = make([]capDemand, numCap+1)
	e.capDem[numCap] = capDemand{cap: math.Inf(1)}
	var capRemap []int32
	if numCap > 0 {
		e.trackDemand = true
		capRemap = make([]int32, net.NumLinks())
		r := int32(0)
		for j := range cfg.Links {
			if cfg.Links[j].Kind == Capacity {
				capRemap[j] = r
				e.capDem[r] = capDemand{bg: cfg.Links[j].Background, cap: cfg.Links[j].effCapacity(net.Capacity(j))}
				r++
			}
		}
	}
	if anyDropTail {
		e.links = make([]linkState, net.NumLinks())
		for j := range e.links {
			e.links[j] = newLinkState(cfg.Links[j], net.Capacity(j))
		}
	}
	if anyLayerLoss {
		e.linkLayerLoss = make([][]float64, net.NumLinks())
		for j := range cfg.Links {
			e.linkLayerLoss[j] = cfg.Links[j].LayerLoss
		}
	}
	nn := g.NumNodes()
	// Scratch for tree discovery on global node ids, reused per session.
	gParent := make([]int32, nn)
	gParentLink := make([]int32, nn)
	gChildren := make([][]buildEdge, nn)
	intern := make([]int32, nn) // global node id -> session-internal id
	// Construction scratch reused across sessions, and one immutable
	// layering scheme per distinct layer count, in a dense slice keyed by
	// layer count (the zero Scheme has NumLayers 0, so presence is the
	// value itself — no map on the construction path).
	var globalOf, dfs, fill, dfill []int32
	schemes := make([]layering.Scheme, MaxLayers+1)
	maxEdges := 0
	e.txCal = make([]float64, len(e.sess))
	for li := range e.sess {
		gi := li
		if sessIDs != nil {
			gi = sessIDs[li]
		}
		ns := net.Session(gi)
		sc := cfg.Sessions[gi]
		m := int32(sc.Layers)
		s := &e.sess[li]
		sch := schemes[sc.Layers]
		if sch.NumLayers() == 0 {
			sch = layering.Exponential(sc.Layers)
			schemes[sc.Layers] = sch
		}
		*s = sessState{idx: li, cfg: sc, scheme: sch, m: m}
		// The session's arrays are carved out of per-width slabs once
		// the tree is discovered and every size is known (below).
		// Discover the multicast tree on global node ids from the
		// receivers' data-paths. The sender's parent slot is claimed up
		// front: a walk that re-enters the root would otherwise hang a
		// cycle off the "tree" (hand-built paths can do this; routed
		// ones cannot) and must be rejected below.
		for nd := 0; nd < nn; nd++ {
			gParent[nd] = -1
			gParentLink[nd] = -1
			gChildren[nd] = gChildren[nd][:0]
		}
		gParent[ns.Sender] = int32(ns.Sender)
		nEdges := 0
		for k := range ns.Receivers {
			cur := ns.Sender
			for _, j := range net.Path(gi, k) {
				nb := g.Other(j, cur)
				if p := gParent[nb]; p == -1 {
					gParent[nb] = int32(cur)
					gParentLink[nb] = int32(j)
					spec := LinkSpec{}
					if cfg.Links != nil {
						spec = cfg.Links[j]
					}
					ek := ekAlways
					invLog := 0.0
					switch spec.Kind {
					case Bernoulli:
						if spec.LayerLoss != nil {
							ek = ekLayerLoss
						} else if spec.Loss > 0 {
							ek = ekBernoulli
							invLog = 1 / math.Log(1-spec.Loss)
						}
					case Capacity:
						ek = ekCapacity
					case DropTail:
						ek = ekDropTail
					}
					gChildren[cur] = append(gChildren[cur], buildEdge{
						link: int32(j), child: int32(nb), kind: ek, invLog: invLog,
					})
					nEdges++
				} else if p != int32(cur) {
					return nil, fmt.Errorf("netsim: session %d data-paths do not form a tree (node %d reached from %d and %d)", gi, nb, p, cur)
				} else if gParentLink[nb] != int32(j) {
					// Same parent node over a parallel link: still two
					// distinct physical trees.
					return nil, fmt.Errorf("netsim: session %d data-paths do not form a tree (node %d reached via links %d and %d)", gi, nb, gParentLink[nb], j)
				}
				cur = nb
			}
		}
		// Renumber the tree's nodes in DFS pre-order (children in
		// data-path discovery order, which is deterministic) so the
		// per-node arrays below are visited near-sequentially by the
		// forwarding DFS, and size everything by the tree, not the graph.
		treeN := 1 + nEdges
		nR := ns.NumReceivers()
		for s.rowShift = 1; 1<<s.rowShift < int(m)+1; s.rowShift++ {
		}
		rowLen := treeN << s.rowShift
		// Slab allocation: one backing array per element width, carved
		// into the session's arrays — a handful of allocations per
		// session instead of ~25, with the walk-side arrays adjacent in
		// memory. Capacities are capped at each carve so an accidental
		// append could never bleed into a neighbor. downRecv is the one
		// exception: its length (the sum of receiver depths) is only
		// known after the counting pass further down.
		s32 := make([]int32, 3*nR+(sc.Layers+1)+3*treeN+2*(treeN+1)+2*rowLen+4*nEdges+1)
		s64 := make([]int64, nR+2*nEdges)
		nf := 2*sc.Layers + 1 + 2*nEdges
		if cfg.LeaveLatency > 0 {
			nf += nEdges << s.rowShift
		}
		sf := make([]float64, nf)
		sb := make([]bool, nR+2*treeN)
		take32 := func(n int) []int32 { v := s32[:n:n]; s32 = s32[n:]; return v }
		take64 := func(n int) []int64 { v := s64[:n:n]; s64 = s64[n:]; return v }
		takeF := func(n int) []float64 { v := sf[:n:n]; sf = sf[n:]; return v }
		takeB := func(n int) []bool { v := sb[:n:n]; sb = sb[n:]; return v }
		s.edgeStart = take32(treeN + 1)
		s.edgeSub = take32(nEdges)
		s.order = take32(nEdges)
		s.pos = take32(nEdges)
		s.gt = take32(rowLen)
		s.lvlCnt = take32(rowLen)
		s.subMax = take32(treeN)
		s.parent = take32(treeN)
		s.parentEdge = take32(treeN)
		s.recvStart = take32(treeN + 1)
		s.recvList = take32(nR)
		s.recvNode = take32(nR)
		s.levels = take32(nR)
		s.nAtLevel = take32(sc.Layers + 1)
		s.downStart = take32(nEdges + 1)
		s.crossed = take64(nEdges)
		s.lossGap = take64(nEdges)
		s.countdown = take64(nR)
		s.period = takeF(sc.Layers)
		s.cum = takeF(sc.Layers + 1)
		s.fluidInt = takeF(nEdges)
		s.fluidT = takeF(nEdges)
		if cfg.LeaveLatency > 0 {
			s.linger = takeF(nEdges << s.rowShift)
		}
		s.wide = takeB(treeN)
		s.solo = takeB(treeN)
		s.clean = takeB(nR)
		s.received = make([]int, nR)
		s.hot = make([]hotEdge, 0, nEdges)
		s.cold = make([]coldEdge, 0, nEdges)
		for l := 0; l < sc.Layers; l++ {
			s.period[l] = 1 / s.scheme.LayerRate(l)
		}
		s.tickDt = s.period[sc.Layers-1]
		e.txCal[li] = s.tickDt
		s.nAtLevel[0] = int32(nR) // all pre-join
		for v := 0; v <= sc.Layers; v++ {
			s.cum[v] = s.scheme.CumulativeRate(v)
		}
		s.parent[0] = -1
		s.parentEdge[0] = -1
		// Pass 1: pre-order numbering (children in data-path discovery
		// order, so the permutation is deterministic).
		globalOf = globalOf[:0]
		dfs = append(dfs[:0], int32(ns.Sender))
		for len(dfs) > 0 {
			gnd := dfs[len(dfs)-1]
			dfs = dfs[:len(dfs)-1]
			intern[gnd] = int32(len(globalOf))
			globalOf = append(globalOf, gnd)
			// Push in reverse so pop order follows discovery order.
			for c := len(gChildren[gnd]) - 1; c >= 0; c-- {
				dfs = append(dfs, gChildren[gnd][c].child)
			}
		}
		// Receiver placement CSR first (counting sort by hosting node),
		// so pass 2 can embed each child's receiver block in its edge.
		for k := range ns.Receivers {
			s.recvNode[k] = intern[ns.Receivers[k]]
		}
		for k := range s.recvNode {
			s.recvStart[s.recvNode[k]+1]++
		}
		for nd := 0; nd < treeN; nd++ {
			s.recvStart[nd+1] += s.recvStart[nd]
		}
		fill = append(fill[:0], s.recvStart[:treeN]...)
		for k := range s.recvNode {
			nd := s.recvNode[k]
			s.recvList[fill[nd]] = int32(k)
			fill[nd]++
		}
		// Pass 2: CSR blocks in internal id order; with pre-order ids a
		// packet's DFS touches the rows near-sequentially.
		for ind := int32(0); ind < int32(treeN); ind++ {
			s.edgeStart[ind] = int32(len(s.hot))
			for _, ed := range gChildren[globalOf[ind]] {
				eid := int32(len(s.hot))
				child := intern[ed.child]
				capIdx := e.capSentinel
				if ed.kind == ekCapacity {
					capIdx = capRemap[ed.link]
				}
				s.hot = append(s.hot, hotEdge{
					link: ed.link, capIdx: capIdx,
					recvLo: s.recvStart[child],
					recvHi: s.recvStart[child+1],
					gtOff:  child << s.rowShift,
					meta:   uint32(ed.kind),
				})
				s.cold = append(s.cold, coldEdge{invLog: ed.invLog})
				s.parent[child] = ind
				s.parentEdge[child] = eid
				// Identity permutation: every edge starts in bucket 0
				// (all subMax are 0 before receivers join), which is
				// trivially counting-sorted.
				s.order[eid] = eid
				s.pos[eid] = eid
			}
		}
		s.edgeStart[treeN] = int32(len(s.hot))
		// Each child's own edge block is known only now.
		for eid := range s.hot {
			child := s.hot[eid].gtOff >> s.rowShift
			s.hot[eid].edgeLo = s.edgeStart[child]
			s.hot[eid].edgeHi = s.edgeStart[child+1]
		}
		s.lossOnly, s.capOnly = true, true
		for eid := range s.hot {
			switch int8(s.hot[eid].meta & metaKindMask) {
			case ekAlways:
			case ekBernoulli:
				s.capOnly = false
			case ekCapacity:
				s.lossOnly = false
			default: // ekLayerLoss, ekDropTail: generic walk only
				s.lossOnly, s.capOnly = false, false
			}
		}
		if s.lossOnly {
			// A pure-Perfect tree takes the (cheaper) loss walk.
			s.capOnly = false
		}
		for nd := 0; nd < treeN; nd++ {
			s.wide[nd] = s.edgeStart[nd+1]-s.edgeStart[nd] > wideFanout
			s.solo[nd] = (s.edgeStart[nd+1]-s.edgeStart[nd])+(s.recvStart[nd+1]-s.recvStart[nd]) == 1
		}
		// wide[] is known only now; stamp each edge with its child's
		// wideness so the descent skips the node-indexed load.
		for eid := range s.hot {
			if s.wide[s.hot[eid].gtOff>>s.rowShift] {
				s.hot[eid].meta |= metaWide
			}
		}
		// Downstream-receiver CSR per edge: a receiver at internal node
		// nd sits below every edge on nd's root path, i.e. below
		// parentEdge of each ancestor. Receivers are grouped per edge in
		// DFS (pre-order) receiver order.
		for k := range s.recvNode {
			for nd := s.recvNode[k]; nd != 0; nd = s.parent[nd] {
				s.downStart[s.parentEdge[nd]+1]++
			}
		}
		for eid := 0; eid < nEdges; eid++ {
			s.downStart[eid+1] += s.downStart[eid]
		}
		s.downRecv = make([]int32, s.downStart[nEdges])
		dfill = append(dfill[:0], s.downStart[:nEdges]...)
		// recvList is already in pre-order node order; walking it keeps
		// each edge's block in DFS order, matching the old subtree walk.
		for _, k := range s.recvList {
			for nd := s.recvNode[k]; nd != 0; nd = s.parent[nd] {
				eid := s.parentEdge[nd]
				s.downRecv[dfill[eid]] = k
				dfill[eid]++
			}
		}
		// Bring every receiver online through the same incremental
		// machinery the run uses (joins bubble up, order buckets and
		// link demand update as a side effect).
		for k := range s.levels {
			e.applyLevelChange(s, k, 1)
			e.armReceiver(s, k, 1)
		}
		if nEdges > maxEdges {
			maxEdges = nEdges
		}
	}
	// The DFS work stack can hold at most one entry per tree edge;
	// reserving the worst case up front keeps the walk append-free for
	// the whole run (part of the PlanMemory no-growth contract).
	e.fwdStack = make([]int32, 0, maxEdges)

	e.calUniform = len(e.sess) > 0
	for i := 1; i < len(e.sess); i++ {
		if e.sess[i].tickDt != e.sess[0].tickDt {
			e.calUniform = false
			break
		}
	}

	// Seed the clock: the global signal and churn (transmissions live on
	// the per-session calendars). Preallocate the arena at its expected
	// high-water mark so steady state never appends.
	e.q.a = make([]event, 0, len(e.churn)+1+64)
	e.signalPeriod = cfg.SignalPeriod
	if e.signalPeriod == 0 {
		e.signalPeriod = 1
	}
	for i := range e.sess {
		if e.sess[i].cfg.Protocol == protocol.Coordinated && e.sess[i].cfg.Layers > 1 {
			e.push(event{time: e.signalPeriod, key: prioSignal, kind: evSignal})
			break
		}
	}
	for ci, ev := range e.churn {
		e.push(event{time: ev.Time, kind: evChurn, node: int32(ci)})
	}
	if cfg.Probe != nil {
		e.probe = newProbeState(cfg.Probe, e)
	}
	// Intra-session subtree decomposition: only for sharded group engines
	// (sessIDs non-nil — the sequential path stays exactly the historical
	// engine) holding a single session. Eligibility and the frontier are
	// pure functions of the Config, never of Shards' value or core count.
	if cfg.Shards > 0 && sessIDs != nil && len(e.sess) == 1 {
		e.part = newTreePartition(e, &e.sess[0], seed)
	}
	return e, nil
}

func (e *engine) push(ev event) {
	ev.key |= e.seq
	e.seq++
	e.q.push(ev)
	if n := len(e.q.a); n > e.heapHW {
		e.heapHW = n
	}
}

// applyLevelChange records receiver k's new subscription level and
// propagates the contribution change up the session tree: per ancestor
// it is one counting-bucket bump; propagation stops at the first node
// whose maximum does not move. Nodes whose maximum does move are
// re-bucketed in their parent's child ordering and their parent link's
// fluid demand is adjusted by the cumulative-rate delta.
func (e *engine) applyLevelChange(s *sessState, k int, nl int32) {
	a := s.levels[k]
	if nl == a {
		return
	}
	s.levelInt += float64(s.sumLevel) * (e.now - s.levelT)
	s.levelT = e.now
	s.sumLevel += int64(nl - a)
	s.levels[k] = nl
	s.nAtLevel[a]--
	s.nAtLevel[nl]++
	e.propagateFrom(s, s.recvNode[k], a, nl)
	if p := e.part; p != nil {
		// Sequential-phase changes (churn, signals, core-walk drops)
		// propagate straight through cut edges; re-sync the owning
		// subtree's rollup snapshot so the deferred path stays coherent.
		if j := p.subOfNode[s.recvNode[k]]; j >= 0 {
			p.prevRootMax[j] = s.subMax[p.subRoot[j]]
		}
	}
}

// propagateFrom bubbles a contribution change (level a -> b) at node nd
// up the session tree: per ancestor it is one counting-bucket bump;
// propagation stops at the first node whose maximum does not move.
func (e *engine) propagateFrom(s *sessState, nd, a, b int32) {
	for {
		om := s.subMax[nd]
		var nm int32
		if s.solo[nd] {
			// Single-contribution node: its maximum is the contribution.
			nm = b
		} else {
			// Move one contribution at nd from level a to level b (level
			// 0 contributions are identity — they can never become the
			// maximum), then recover the new maximum from the count row:
			// it only moves up when b overtakes it, and only moves down
			// when the old maximum's slot empties.
			row := nd << s.rowShift
			if a > 0 {
				s.lvlCnt[row+a]--
			}
			if b > 0 {
				s.lvlCnt[row+b]++
			}
			nm = om
			if b > om {
				nm = b
			} else if a == om && s.lvlCnt[row+om] == 0 {
				for nm--; nm > 0 && s.lvlCnt[row+nm] == 0; nm-- {
				}
			}
		}
		if nm == om {
			return
		}
		s.subMax[nd] = nm
		eid := s.parentEdge[nd]
		if eid < 0 {
			return // reached the session root
		}
		s.fluidInt[eid] += s.cum[om] * (e.now - s.fluidT[eid])
		s.fluidT[eid] = e.now
		s.edgeSub[eid] = nm
		if e.trackDemand {
			// Non-Capacity edges alias the write-only sentinel row.
			e.capDem[s.hot[eid].capIdx].dem += s.cum[nm] - s.cum[om]
		}
		if s.linger != nil && nm < om {
			// Layers nm..om-1 just lost their last subscriber below this
			// edge; the link keeps carrying them until now + latency.
			until := e.now + e.leaveLatency
			row := eid << s.rowShift
			for v := nm; v < om; v++ {
				s.linger[row+v] = until
			}
		}
		p := s.parent[nd]
		if s.wide[p] {
			s.reorder(eid, p, om, nm)
		}
		a, b = om, nm
		nd = p
	}
}

// armReceiver re-arms receiver k's join logic at level lv — the engine
// inlining of protocol.Receiver.resetEventState.
func (e *engine) armReceiver(s *sessState, k int, lv int32) {
	switch s.cfg.Protocol {
	case protocol.Deterministic:
		s.countdown[k] = int64(protocol.JoinThreshold(int(lv)))
	case protocol.Uncoordinated:
		s.countdown[k] = int64(protocol.SampleGeometric(e.rng, 1/float64(protocol.JoinThreshold(int(lv)))))
	case protocol.Coordinated:
		s.clean[k] = true
	}
}

// joinReceiver adds one layer to receiver k (bounded by M) and re-arms
// its join state — protocol.Receiver.join.
func (e *engine) joinReceiver(s *sessState, k int) {
	lv := s.levels[k]
	if lv < s.m {
		lv++
		e.applyLevelChange(s, k, lv)
	}
	e.armReceiver(s, k, lv)
}

// congestReceiver applies a congestion observation to receiver k: leave
// the top joined layer (unless only the base layer is joined) and
// re-arm — protocol.Receiver.OnCongestion.
func (e *engine) congestReceiver(s *sessState, k int) {
	lv := s.levels[k]
	if lv > 1 {
		lv--
		e.applyLevelChange(s, k, lv)
	}
	s.clean[k] = false // a Coordinated receiver must wait for a clean window
	switch s.cfg.Protocol {
	case protocol.Deterministic:
		s.countdown[k] = int64(protocol.JoinThreshold(int(lv)))
	case protocol.Uncoordinated:
		s.countdown[k] = int64(protocol.SampleGeometric(e.rng, 1/float64(protocol.JoinThreshold(int(lv)))))
	}
}

// forward drains one packet through the session tree from node at time
// t: one fused, allocation-free loop over a reusable work stack of edge
// ids. Per hop it reads the 32-byte hot edge record (admission class,
// the entered node's receiver and child blocks), decides admission
// inline (Perfect/Bernoulli/Capacity; DropTail goes through the queue
// model and schedules a continuation event at its exit time), delivers
// to the subscribed receivers, then tail-descends into the first
// eligible child, pushing only the remaining siblings.
//
// Eligibility snapshots before descent: sibling subtrees are disjoint,
// so processing one cannot change another's subtree maximum, and level
// changes triggered by a delivery only re-bucket nodes on the path to
// the root — never the entered node's own children.
func (e *engine) forward(s *sessState, layer, node int32, t float64) {
	countJoins := s.cfg.Protocol != protocol.Coordinated
	// Entry node: deliver to its receivers, then seed the walk with its
	// eligible children (in bucket order: first directly, rest pushed in
	// reverse).
	for x := s.recvStart[node]; x < s.recvStart[node+1]; x++ {
		k := s.recvList[x]
		if s.levels[k] > layer { // departed receivers sit at level 0
			s.received[k]++
			if countJoins {
				s.countdown[k]--
				if s.countdown[k] <= 0 {
					e.joinReceiver(s, int(k))
				}
			}
		}
	}
	if s.lossOnly {
		e.forwardLossOnly(s, layer, node, countJoins)
		return
	}
	if s.capOnly {
		e.forwardCapOnly(s, layer, node, countJoins)
		return
	}
	st := e.fwdStack[:0]
	if s.wide[node] {
		base := s.edgeStart[node]
		for p := s.gt[(node<<s.rowShift)+layer] - 1; p >= 0; p-- {
			st = append(st, s.order[base+p])
		}
	} else {
		for ceid := s.edgeStart[node+1] - 1; ceid >= s.edgeStart[node]; ceid-- {
			if s.edgeSub[ceid] > layer {
				st = append(st, ceid)
			}
		}
	}
	for len(st) > 0 {
		eid := st[len(st)-1]
		st = st[:len(st)-1]
	descend:
		ed := &s.hot[eid]
		s.crossed[eid]++
		dropped := false
		switch int8(ed.meta & metaKindMask) {
		case ekAlways:
		case ekBernoulli:
			// The i.i.d. Bernoulli drop process is realized by sampling
			// inter-drop gaps geometrically — exactly the same law as a
			// per-crossing coin flip, one RNG draw per drop instead of
			// one per crossing. The refill happens at the consumption
			// point (a crossing with an exhausted gap), keeping the RNG
			// draw order identical to the per-crossing formulation.
			gap := s.lossGap[eid]
			if gap == 0 {
				// protocol.SampleGeometricInv, textually inlined (the
				// call costs ~2% on loss-heavy walks; the property
				// suite pins the equivalence draw for draw).
				u := e.rng.Float64()
				if u <= 0 {
					u = math.SmallestNonzeroFloat64
				}
				gap = int64(math.Log(u)*s.cold[eid].invLog) + 1
				if gap < 1 {
					gap = 1
				}
			}
			gap--
			s.lossGap[eid] = gap
			dropped = gap == 0
		case ekLayerLoss:
			// Layer-dependent loss breaks the geometric-gap trick (the
			// per-crossing probability is no longer constant), so draw
			// directly per crossing.
			ll := e.linkLayerLoss[ed.link]
			p := ll[len(ll)-1]
			if int(layer) < len(ll) {
				p = ll[layer]
			}
			dropped = p > 0 && e.rng.Float64() < p
		case ekCapacity:
			// Drop with probability (d-c)/d; comparing r*d < d-c avoids
			// the division on the admission fast path.
			cd := &e.capDem[ed.capIdx]
			d := cd.dem + cd.bg
			dropped = d > cd.cap && e.rng.Float64()*d < d-cd.cap
		default: // ekDropTail
			exit, drop := e.links[ed.link].admitQueue(t)
			if drop {
				dropped = true
				break
			}
			if exit > t {
				e.push(event{time: exit, kind: evForward, sess: int32(s.idx), layer: layer, node: ed.gtOff >> s.rowShift})
				continue
			}
		}
		if dropped {
			s.cold[eid].drops++
			e.notifyLoss(s, layer, eid)
			continue
		}
		// Deliver to the entered node's receivers.
		for x := ed.recvLo; x < ed.recvHi; x++ {
			k := s.recvList[x]
			if s.levels[k] > layer {
				s.received[k]++
				if countJoins {
					s.countdown[k]--
					if s.countdown[k] <= 0 {
						e.joinReceiver(s, int(k))
					}
				}
			}
		}
		// Expand the entered node's eligible children and tail-descend
		// into the first one (in the same order the stack would yield).
		if ed.meta&metaWide != 0 {
			if cn := s.gt[ed.gtOff+layer]; cn > 0 {
				cb := ed.edgeLo
				for p := cn - 1; p >= 1; p-- {
					st = append(st, s.order[cb+p])
				}
				eid = s.order[cb]
				goto descend
			}
		} else {
			first := int32(-1)
			for ceid := ed.edgeHi - 1; ceid >= ed.edgeLo; ceid-- {
				if s.edgeSub[ceid] > layer {
					if first >= 0 {
						st = append(st, first)
					}
					first = ceid
				}
			}
			if first >= 0 {
				eid = first
				goto descend
			}
		}
	}
	e.fwdStack = st[:0]
}

// forwardLossOnly is forward's walk for sessions whose tree carries
// only instant loss links (Perfect / Bernoulli) — the paper's Section 4
// setting and the common large-topology scenario — with the admission
// switch compiled out: an edge either always admits or runs the
// geometric gap counter. Behavior is identical to the generic walk.
func (e *engine) forwardLossOnly(s *sessState, layer, node int32, countJoins bool) {
	st := e.fwdStack[:0]
	if s.wide[node] {
		base := s.edgeStart[node]
		for p := s.gt[(node<<s.rowShift)+layer] - 1; p >= 0; p-- {
			st = append(st, s.order[base+p])
		}
	} else {
		for ceid := s.edgeStart[node+1] - 1; ceid >= s.edgeStart[node]; ceid-- {
			if s.edgeSub[ceid] > layer {
				st = append(st, ceid)
			}
		}
	}
	for len(st) > 0 {
		eid := st[len(st)-1]
		st = st[:len(st)-1]
	descend:
		ed := &s.hot[eid]
		s.crossed[eid]++
		// In a loss-only tree the kind bits are ekAlways (0) or
		// ekBernoulli, so any set kind bit means "run the gap counter".
		if ed.meta&metaKindMask != 0 {
			gap := s.lossGap[eid]
			if gap == 0 {
				// protocol.SampleGeometricInv, textually inlined (the
				// call costs ~2% on loss-heavy walks; the property
				// suite pins the equivalence draw for draw).
				u := e.rng.Float64()
				if u <= 0 {
					u = math.SmallestNonzeroFloat64
				}
				gap = int64(math.Log(u)*s.cold[eid].invLog) + 1
				if gap < 1 {
					gap = 1
				}
			}
			gap--
			s.lossGap[eid] = gap
			if gap == 0 {
				s.cold[eid].drops++
				e.notifyLoss(s, layer, eid)
				continue
			}
		}
		for x := ed.recvLo; x < ed.recvHi; x++ {
			k := s.recvList[x]
			if s.levels[k] > layer {
				s.received[k]++
				if countJoins {
					s.countdown[k]--
					if s.countdown[k] <= 0 {
						e.joinReceiver(s, int(k))
					}
				}
			}
		}
		if ed.meta&metaWide != 0 {
			if cn := s.gt[ed.gtOff+layer]; cn > 0 {
				cb := ed.edgeLo
				for p := cn - 1; p >= 1; p-- {
					st = append(st, s.order[cb+p])
				}
				eid = s.order[cb]
				goto descend
			}
		} else {
			first := int32(-1)
			for ceid := ed.edgeHi - 1; ceid >= ed.edgeLo; ceid-- {
				if s.edgeSub[ceid] > layer {
					if first >= 0 {
						st = append(st, first)
					}
					first = ceid
				}
			}
			if first >= 0 {
				eid = first
				goto descend
			}
		}
	}
	e.fwdStack = st[:0]
}

// forwardCapOnly is forward's walk for sessions whose tree carries
// only Perfect and capacity-coupled links — the irregular-topology
// (ScaleFree / FatTree) benchmark shape — with the admission switch
// narrowed to one branch: an edge either always admits or runs the
// fluid-overload coin against its packed capDem row. Behavior is
// identical to the generic walk.
func (e *engine) forwardCapOnly(s *sessState, layer, node int32, countJoins bool) {
	st := e.fwdStack[:0]
	if s.wide[node] {
		base := s.edgeStart[node]
		for p := s.gt[(node<<s.rowShift)+layer] - 1; p >= 0; p-- {
			st = append(st, s.order[base+p])
		}
	} else {
		for ceid := s.edgeStart[node+1] - 1; ceid >= s.edgeStart[node]; ceid-- {
			if s.edgeSub[ceid] > layer {
				st = append(st, ceid)
			}
		}
	}
	for len(st) > 0 {
		eid := st[len(st)-1]
		st = st[:len(st)-1]
	descend:
		ed := &s.hot[eid]
		s.crossed[eid]++
		// In a cap-only tree the kind bits are ekAlways (0) or
		// ekCapacity, so any set kind bit means "run the overload coin".
		if ed.meta&metaKindMask != 0 {
			cd := &e.capDem[ed.capIdx]
			d := cd.dem + cd.bg
			if d > cd.cap && e.rng.Float64()*d < d-cd.cap {
				s.cold[eid].drops++
				e.notifyLoss(s, layer, eid)
				continue
			}
		}
		for x := ed.recvLo; x < ed.recvHi; x++ {
			k := s.recvList[x]
			if s.levels[k] > layer {
				s.received[k]++
				if countJoins {
					s.countdown[k]--
					if s.countdown[k] <= 0 {
						e.joinReceiver(s, int(k))
					}
				}
			}
		}
		if ed.meta&metaWide != 0 {
			if cn := s.gt[ed.gtOff+layer]; cn > 0 {
				cb := ed.edgeLo
				for p := cn - 1; p >= 1; p-- {
					st = append(st, s.order[cb+p])
				}
				eid = s.order[cb]
				goto descend
			}
		} else {
			first := int32(-1)
			for ceid := ed.edgeHi - 1; ceid >= ed.edgeLo; ceid-- {
				if s.edgeSub[ceid] > layer {
					if first >= 0 {
						st = append(st, first)
					}
					first = ceid
				}
			}
			if first >= 0 {
				eid = first
				goto descend
			}
		}
	}
	e.fwdStack = st[:0]
}

// dispatch routes one packet into the session tree, picking the walk
// variant: sessions under a leave-latency regime take forwardLinger
// (which must also run when nothing is subscribed, to meter lingering
// crossings); everything else takes the optimized forward.
func (e *engine) dispatch(s *sessState, layer, node int32, t float64) {
	if s.linger != nil {
		e.forwardLinger(s, layer, node, t)
		return
	}
	e.forward(s, layer, node, t)
}

// pushEligibleLinger seeds/extends the linger walk at node nd: it
// pushes nd's subscribed children in reverse of the exact enumeration
// order forward uses (wide nodes: the counting-sorted bucket prefix;
// narrow nodes: dense ceid order), so the DFS order of subscribed-edge
// crossings — and hence every RNG draw — is identical to the plain
// walk's. Unsubscribed children inside an open linger window count a
// crossing inline: they deliver nothing and draw no randomness, so
// their position in the iteration is immaterial.
func (s *sessState) pushEligibleLinger(st []int32, nd, layer int32, t float64) []int32 {
	lo, hi := s.edgeStart[nd], s.edgeStart[nd+1]
	if s.wide[nd] {
		for p := s.gt[(nd<<s.rowShift)+layer] - 1; p >= 0; p-- {
			st = append(st, s.order[lo+p])
		}
	} else {
		for ceid := hi - 1; ceid >= lo; ceid-- {
			if s.edgeSub[ceid] > layer {
				st = append(st, ceid)
			}
		}
	}
	for ceid := lo; ceid < hi; ceid++ {
		if s.edgeSub[ceid] <= layer && s.linger[(ceid<<s.rowShift)+layer] > t {
			s.crossed[ceid]++ // a leave still being processed wastes the link
		}
	}
	return st
}

// forwardLinger is the walk for sessions with LeaveLatency > 0: besides
// the normal descent into subscribed subtrees, an edge whose subtree
// has abandoned the layer still counts a crossing while its linger
// window is open — consuming bandwidth, delivering nothing, observing
// no losses, and drawing no randomness. Subscribed edges are visited in
// forward's exact DFS order (see pushEligibleLinger), so receiver
// dynamics are identical to the latency-0 run at equal seed.
func (e *engine) forwardLinger(s *sessState, layer, node int32, t float64) {
	countJoins := s.cfg.Protocol != protocol.Coordinated
	for x := s.recvStart[node]; x < s.recvStart[node+1]; x++ {
		k := s.recvList[x]
		if s.levels[k] > layer {
			s.received[k]++
			if countJoins {
				s.countdown[k]--
				if s.countdown[k] <= 0 {
					e.joinReceiver(s, int(k))
				}
			}
		}
	}
	st := s.pushEligibleLinger(e.fwdStack[:0], node, layer, t)
	for len(st) > 0 {
		eid := st[len(st)-1]
		st = st[:len(st)-1]
		ed := &s.hot[eid]
		s.crossed[eid]++
		dropped := false
		switch int8(ed.meta & metaKindMask) {
		case ekAlways:
		case ekBernoulli:
			gap := s.lossGap[eid]
			if gap == 0 {
				// protocol.SampleGeometricInv, textually inlined (the
				// call costs ~2% on loss-heavy walks; the property
				// suite pins the equivalence draw for draw).
				u := e.rng.Float64()
				if u <= 0 {
					u = math.SmallestNonzeroFloat64
				}
				gap = int64(math.Log(u)*s.cold[eid].invLog) + 1
				if gap < 1 {
					gap = 1
				}
			}
			gap--
			s.lossGap[eid] = gap
			dropped = gap == 0
		case ekLayerLoss:
			ll := e.linkLayerLoss[ed.link]
			p := ll[len(ll)-1]
			if int(layer) < len(ll) {
				p = ll[layer]
			}
			dropped = p > 0 && e.rng.Float64() < p
		case ekCapacity:
			cd := &e.capDem[ed.capIdx]
			d := cd.dem + cd.bg
			dropped = d > cd.cap && e.rng.Float64()*d < d-cd.cap
		default: // ekDropTail
			exit, drop := e.links[ed.link].admitQueue(t)
			if drop {
				dropped = true
				break
			}
			if exit > t {
				e.push(event{time: exit, kind: evForward, sess: int32(s.idx), layer: layer, node: ed.gtOff >> s.rowShift})
				continue
			}
		}
		if dropped {
			s.cold[eid].drops++
			e.notifyLoss(s, layer, eid)
			continue
		}
		for x := ed.recvLo; x < ed.recvHi; x++ {
			k := s.recvList[x]
			if s.levels[k] > layer {
				s.received[k]++
				if countJoins {
					s.countdown[k]--
					if s.countdown[k] <= 0 {
						e.joinReceiver(s, int(k))
					}
				}
			}
		}
		st = s.pushEligibleLinger(st, ed.gtOff>>s.rowShift, layer, t)
	}
	e.fwdStack = st[:0]
}

// notifyLoss delivers a congestion observation to every subscribed
// receiver below the dropping edge, at the drop instant (the paper's
// immediate-feedback idealization; links below a drop carry nothing).
// The downstream receiver set of an edge is static topology, so it is a
// precomputed list scanned in the same DFS order the subtree walk would
// visit — subscribed receivers are exactly those above the layer.
func (e *engine) notifyLoss(s *sessState, layer, eid int32) {
	for _, k := range s.downRecv[s.downStart[eid]:s.downStart[eid+1]] {
		if s.levels[k] > layer {
			e.congestReceiver(s, int(k))
		}
	}
}

func (e *engine) applyChurn(ev ChurnEvent) {
	s := &e.sess[ev.Session]
	k := ev.Receiver
	switch {
	case ev.Join && s.levels[k] == 0:
		// A rejoining receiver starts fresh at the base layer.
		e.applyLevelChange(s, k, 1)
		e.armReceiver(s, k, 1)
	case !ev.Join && s.levels[k] > 0:
		e.applyLevelChange(s, k, 0)
	}
}

// Run executes one simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.MemBudget > 0 {
		plan, err := PlanMemory(cfg)
		if err != nil {
			return nil, err
		}
		if plan.Total > cfg.MemBudget {
			return nil, fmt.Errorf("netsim: memory plan %d bytes exceeds MemBudget %d", plan.Total, cfg.MemBudget)
		}
	}
	if cfg.Shards > 0 {
		return runSharded(cfg)
	}
	e, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	for e.sent < cfg.Packets {
		// Next sender transmission: the lowest-index session holding the
		// earliest calendar entry. With a uniform calendar that is the
		// round-robin cursor (see calUniform); otherwise scan.
		var ts float64
		var si int
		if e.calUniform {
			si = e.calCursor
			ts = e.txCal[si]
		} else {
			ts = math.Inf(1)
			si = -1
			for i, tx := range e.txCal {
				if tx < ts {
					ts = tx
					si = i
				}
			}
			if si < 0 {
				// No sessions can ever transmit (zero-session network).
				return nil, fmt.Errorf("netsim: event queue drained before packet budget")
			}
		}
		// Scheduled events run first: anything strictly earlier than the
		// next transmission, plus same-instant packet events (delayed
		// deliveries, churn). Signals yield to same-instant packets,
		// reproducing sim's strict-inequality signal clock.
		for len(e.q.a) > 0 {
			top := &e.q.a[0]
			if top.time > ts || (top.time == ts && top.key >= prioSignal) {
				break
			}
			ev := e.q.pop()
			if e.probe != nil {
				e.probe.advanceTime(e, ev.time)
			}
			e.now = ev.time
			e.pops++
			switch ev.kind {
			case evForward:
				e.popForward++
				e.dispatch(&e.sess[ev.sess], ev.layer, ev.node, e.now)
			case evChurn:
				e.popChurn++
				e.applyChurn(e.churn[ev.node])
			case evSignal:
				e.popSignal++
				e.signal()
			}
		}
		// Fire every layer due at this tick — the contiguous range given
		// by the tick's trailing zeros — layer-ascending, stopping
		// exactly at the packet budget.
		if e.probe != nil {
			e.probe.advanceTime(e, ts)
		}
		e.now = ts
		s := &e.sess[si]
		n := s.tick + 1
		lo := s.m - 1 - int32(bits.TrailingZeros64(n))
		if lo <= 1 {
			lo = 0 // layer 0 shares layer 1's period
		}
		for l := lo; l < s.m && e.sent < cfg.Packets; l++ {
			e.sent++
			if s.linger != nil {
				// Linger sessions walk even when nothing subscribes: a
				// pending leave still meters crossings on the root edges.
				e.forwardLinger(s, l, 0, ts)
			} else if s.subMax[0] > l {
				e.forward(s, l, 0, ts)
			}
			if e.probe != nil {
				e.probe.advancePackets(e, ts)
			}
		}
		s.tick = n
		e.txCal[si] = float64(n+1) * s.tickDt
		e.ticksFired++
		if e.calUniform {
			if e.calCursor++; e.calCursor == len(e.sess) {
				e.calCursor = 0
			}
		}
	}
	return e.result(), nil
}

// signal drives the global Coordinated join clock: one nested signal
// level per tick, delivered to every active Coordinated receiver.
func (e *engine) signal() {
	e.signalIdx++
	for i := range e.sess {
		s := &e.sess[i]
		if s.cfg.Protocol != protocol.Coordinated || s.cfg.Layers < 2 {
			continue
		}
		lvl := int32(protocol.SignalLevel(e.signalIdx, s.cfg.Layers-1))
		eligible := false
		for v := int32(1); v <= lvl; v++ {
			if e.levelPopulated(s, v) {
				eligible = true
				break
			}
		}
		if !eligible {
			continue // nobody at or below the signal level: exact no-op
		}
		for k, lv := range s.levels {
			// protocol.Receiver.OnSignal, inlined. Departed receivers
			// (level 0) and receivers above the signal level are exact
			// no-ops, skipped without touching their join state.
			if lv < 1 || lv > lvl {
				continue
			}
			if s.clean[k] {
				e.joinReceiver(s, k)
			} else {
				// Missed opportunity; the next window starts now.
				s.clean[k] = true
			}
		}
	}
	e.push(event{time: e.now + e.signalPeriod, key: prioSignal, kind: evSignal})
}

func (e *engine) result() *Result {
	if e.probe != nil {
		e.probe.finish(e)
	}
	res := &Result{
		ReceiverRates:   make([][]float64, len(e.sess)),
		ReceiverPackets: make([][]int, len(e.sess)),
		FinalLevels:     make([][]int, len(e.sess)),
		MeanLevels:      make([]float64, len(e.sess)),
		PacketsSent:     e.sent,
		Duration:        e.now,
		Events:          int64(e.sent) + e.pops,
	}
	if e.probe != nil {
		res.Probe = e.probe.series(e)
	}
	// Per-receiver outputs are subslices of three flat backings (the
	// [][] shape is API; the allocation count need not scale with
	// sessions).
	totR := 0
	for i := range e.sess {
		totR += len(e.sess[i].received)
	}
	rateBuf := make([]float64, totR)
	pktBuf := make([]int, totR)
	lvlBuf := make([]int, totR)
	for i := range e.sess {
		s := &e.sess[i]
		for _, n := range s.crossed {
			res.Events += n
		}
		if e.now > 0 && len(s.received) > 0 {
			levelInt := e.sessionLevelIntegral(s, e.now)
			res.MeanLevels[i] = levelInt / e.now / float64(len(s.received))
		}
		nR := len(s.received)
		res.ReceiverRates[i], rateBuf = rateBuf[:nR:nR], rateBuf[nR:]
		res.ReceiverPackets[i], pktBuf = pktBuf[:nR:nR], pktBuf[nR:]
		res.FinalLevels[i], lvlBuf = lvlBuf[:nR:nR], lvlBuf[nR:]
		for k, n := range s.received {
			res.ReceiverPackets[i][k] = n
			res.FinalLevels[i][k] = int(s.levels[k])
			res.Events += int64(n)
			if e.now > 0 {
				res.ReceiverRates[i][k] = float64(n) / e.now
			}
		}
	}
	// Fold edge-indexed counters back to (session, link) in flat
	// session-major slabs: each session's tree crosses a link through
	// at most one edge.
	nL := e.net.NumLinks()
	linkCrossed := make([]int, len(e.sess)*nL)
	linkDropped := make([]int, len(e.sess)*nL)
	linkFluid := make([]float64, len(e.sess)*nL)
	for i := range e.sess {
		s := &e.sess[i]
		base := i * nL
		for eid := range s.hot {
			j := base + int(s.hot[eid].link)
			linkCrossed[j] = int(s.crossed[eid])
			linkDropped[j] = int(s.cold[eid].drops)
			if e.now > 0 {
				fluid := s.fluidInt[eid] + s.cum[s.edgeSub[eid]]*(e.now-s.fluidT[eid])
				linkFluid[j] = fluid / e.now
			}
		}
	}
	total := 0
	for j := 0; j < nL; j++ {
		total += len(e.net.OnLink(j))
	}
	res.Links = make([]LinkStats, 0, total)
	for j := 0; j < nL; j++ {
		for _, sr := range e.net.OnLink(j) {
			at := sr.Session*nL + j
			ls := LinkStats{
				Link: j, Session: sr.Session,
				Crossed:             linkCrossed[at],
				Dropped:             linkDropped[at],
				FluidRate:           linkFluid[at],
				DownstreamReceivers: len(sr.Receivers),
			}
			if e.now > 0 {
				ls.Rate = float64(ls.Crossed) / e.now
				best := 0.0
				for _, k := range sr.Receivers {
					if r := res.ReceiverRates[sr.Session][k]; r > best {
						best = r
					}
				}
				if best > 0 {
					ls.Redundancy = ls.Rate / best
				}
			}
			res.Links = append(res.Links, ls)
		}
	}
	e.flushStats(res)
	return res
}

// MaxReceiverRate returns the largest goodput in the result (a
// convenience for Definition 3 style normalizations).
func (r *Result) MaxReceiverRate() float64 {
	best := math.Inf(-1)
	for _, rs := range r.ReceiverRates {
		for _, v := range rs {
			if v > best {
				best = v
			}
		}
	}
	if math.IsInf(best, -1) {
		return 0
	}
	return best
}
