package netsim

import (
	"fmt"

	"mlfair/internal/netmodel"
	"mlfair/internal/routing"
)

// Star builds the paper's Figure 7(b) modified star as a netsim Config:
// a sender behind one shared Bernoulli link feeding n receivers through
// independent Bernoulli fanout links — the sim facade's exact topology
// on the general engine. The shared link is link 0; fanout link k is
// link k+1.
func Star(n int, sharedLoss, fanoutLoss float64, sc SessionConfig, packets int, seed uint64) (Config, error) {
	if n < 1 {
		return Config{}, fmt.Errorf("netsim: star needs at least one receiver")
	}
	g := netmodel.NewGraph(2 + n)
	const sender, hub = 0, 1
	g.AddLink(sender, hub, 1)
	receivers := make([]int, n)
	for k := 0; k < n; k++ {
		g.AddLink(hub, 2+k, 1)
		receivers[k] = 2 + k
	}
	s := &netmodel.Session{Sender: sender, Receivers: receivers, Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap}
	net, err := routing.BuildNetwork(g, []*netmodel.Session{s})
	if err != nil {
		return Config{}, err
	}
	specs := make([]LinkSpec, net.NumLinks())
	specs[0] = LinkSpec{Kind: Bernoulli, Loss: sharedLoss}
	for k := 0; k < n; k++ {
		specs[1+k] = LinkSpec{Kind: Bernoulli, Loss: fanoutLoss}
	}
	return Config{
		Network:  net,
		Links:    specs,
		Sessions: []SessionConfig{sc},
		Packets:  packets,
		Seed:     seed,
	}, nil
}

// Mesh builds a multi-session "dumbbell mesh": ns sessions, each with
// its own sender and nr receivers, all crossing one shared backbone link
// of the given spec, with lossless sender access links and Bernoulli
// receiver access links of loss accessLoss:
//
//	sender_i --perfect-- left ==backbone== right --bernoulli-- r_{i,k}
//
// It returns the config and the backbone's link index (ns, after the ns
// sender access links).
func Mesh(ns, nr int, backbone LinkSpec, accessLoss float64, sc SessionConfig, packets int, seed uint64) (Config, int, error) {
	if ns < 1 || nr < 1 {
		return Config{}, 0, fmt.Errorf("netsim: mesh needs sessions and receivers")
	}
	// Nodes: senders 0..ns-1, left = ns, right = ns+1, receivers after.
	g := netmodel.NewGraph(ns + 2 + ns*nr)
	left, right := ns, ns+1
	for i := 0; i < ns; i++ {
		g.AddLink(i, left, 1)
	}
	bb := g.AddLink(left, right, backbone.effCapacity(1))
	sessions := make([]*netmodel.Session, ns)
	node := ns + 2
	for i := 0; i < ns; i++ {
		receivers := make([]int, nr)
		for k := 0; k < nr; k++ {
			g.AddLink(right, node, 1)
			receivers[k] = node
			node++
		}
		sessions[i] = &netmodel.Session{Sender: i, Receivers: receivers, Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap}
	}
	net, err := routing.BuildNetwork(g, sessions)
	if err != nil {
		return Config{}, 0, err
	}
	specs := make([]LinkSpec, net.NumLinks())
	specs[bb] = backbone
	for j := bb + 1; j < net.NumLinks(); j++ {
		specs[j] = LinkSpec{Kind: Bernoulli, Loss: accessLoss}
	}
	sessCfgs := make([]SessionConfig, ns)
	for i := range sessCfgs {
		sessCfgs[i] = sc
	}
	return Config{
		Network:  net,
		Links:    specs,
		Sessions: sessCfgs,
		Packets:  packets,
		Seed:     seed,
	}, bb, nil
}

// UniformChurn synthesizes a periodic leave/rejoin schedule: every
// interval time units, the next receiver (round-robin across all
// sessions of the network) leaves and rejoins downtime later, until
// horizon. It exercises pruning and fresh-join dynamics.
func UniformChurn(net *netmodel.Network, interval, downtime, horizon float64) []ChurnEvent {
	ids := net.ReceiverIDs()
	if len(ids) == 0 || interval <= 0 || downtime <= 0 {
		return nil
	}
	var evs []ChurnEvent
	i := 0
	for t := interval; t < horizon; t += interval {
		id := ids[i%len(ids)]
		evs = append(evs, ChurnEvent{Time: t, Session: id.Session, Receiver: id.Receiver, Join: false})
		evs = append(evs, ChurnEvent{Time: t + downtime, Session: id.Session, Receiver: id.Receiver, Join: true})
		i++
	}
	return evs
}
