package netsim

import (
	"fmt"

	"mlfair/internal/capsim"
	"mlfair/internal/netmodel"
	"mlfair/internal/routing"
	"mlfair/internal/sim"
	"mlfair/internal/treesim"
)

// Star builds the paper's Figure 7(b) modified star as a netsim Config:
// a sender behind one shared Bernoulli link feeding n receivers through
// independent Bernoulli fanout links — sim's exact topology on the
// general engine. The shared link is link 0; fanout link k is link k+1.
func Star(n int, sharedLoss, fanoutLoss float64, sc SessionConfig, packets int, seed uint64) (Config, error) {
	if n < 1 {
		return Config{}, fmt.Errorf("netsim: star needs at least one receiver")
	}
	g := netmodel.NewGraph(2 + n)
	const sender, hub = 0, 1
	g.AddLink(sender, hub, 1)
	receivers := make([]int, n)
	for k := 0; k < n; k++ {
		g.AddLink(hub, 2+k, 1)
		receivers[k] = 2 + k
	}
	s := &netmodel.Session{Sender: sender, Receivers: receivers, Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap}
	net, err := routing.BuildNetwork(g, []*netmodel.Session{s})
	if err != nil {
		return Config{}, err
	}
	specs := make([]LinkSpec, net.NumLinks())
	specs[0] = LinkSpec{Kind: Bernoulli, Loss: sharedLoss}
	for k := 0; k < n; k++ {
		specs[1+k] = LinkSpec{Kind: Bernoulli, Loss: fanoutLoss}
	}
	return Config{
		Network:  net,
		Links:    specs,
		Sessions: []SessionConfig{sc},
		Packets:  packets,
		Seed:     seed,
	}, nil
}

// FromSim lifts a sim.Config onto the general engine (heterogeneous
// fanout losses included). LeaveLatency and PriorityDrop are sim-only
// extensions and are rejected.
func FromSim(c sim.Config) (Config, error) {
	if c.LeaveLatency != 0 || c.Drop != sim.UniformDrop {
		return Config{}, fmt.Errorf("netsim: sim leave-latency / drop-policy extensions are not modeled")
	}
	cfg, err := Star(c.Receivers, c.SharedLoss, c.IndependentLoss,
		SessionConfig{Protocol: c.Protocol, Layers: c.Layers}, c.Packets, c.Seed)
	if err != nil {
		return Config{}, err
	}
	if c.IndependentLosses != nil {
		if len(c.IndependentLosses) != c.Receivers {
			return Config{}, fmt.Errorf("netsim: %d losses for %d receivers", len(c.IndependentLosses), c.Receivers)
		}
		for k, p := range c.IndependentLosses {
			cfg.Links[1+k].Loss = p
		}
	}
	cfg.SignalPeriod = c.SignalPeriod
	return cfg, nil
}

// FromTree lifts a treesim.Tree onto the general engine with per-link
// Bernoulli loss. Graph node i mirrors tree node i; tree node i's parent
// link becomes graph link i-1, so treesim's per-link stats line up with
// Result.Links via NodeForLink.
func FromTree(t *treesim.Tree, sc SessionConfig, packets int, seed uint64) (Config, error) {
	if err := t.Validate(); err != nil {
		return Config{}, err
	}
	n := len(t.Parent)
	g := netmodel.NewGraph(n)
	for i := 1; i < n; i++ {
		g.AddLink(t.Parent[i], i, 1)
	}
	s := &netmodel.Session{
		Sender:    0,
		Receivers: append([]int{}, t.Receivers...),
		Type:      netmodel.MultiRate,
		MaxRate:   netmodel.NoRateCap,
	}
	net, err := routing.BuildNetwork(g, []*netmodel.Session{s})
	if err != nil {
		return Config{}, err
	}
	specs := make([]LinkSpec, net.NumLinks())
	for i := 1; i < n; i++ {
		specs[i-1] = LinkSpec{Kind: Bernoulli, Loss: t.Loss[i]}
	}
	return Config{
		Network:  net,
		Links:    specs,
		Sessions: []SessionConfig{sc},
		Packets:  packets,
		Seed:     seed,
	}, nil
}

// NodeForLink maps a FromTree graph link index back to the treesim node
// whose parent link it mirrors.
func NodeForLink(link int) int { return link + 1 }

// FromCapsim lifts a capsim.Config onto the general engine: every
// session's sender sits behind one shared capacity-coupled link; each
// receiver has its own capacity-coupled fanout link. Link 0 is the
// shared link.
func FromCapsim(c capsim.Config) (Config, error) {
	nr := 0
	for _, sc := range c.Sessions {
		nr += len(sc.FanoutCapacities)
	}
	if nr == 0 {
		return Config{}, fmt.Errorf("netsim: capsim config has no receivers")
	}
	g := netmodel.NewGraph(2 + nr)
	const sender, hub = 0, 1
	g.AddLink(sender, hub, c.SharedCapacity)
	sessions := make([]*netmodel.Session, len(c.Sessions))
	sessCfgs := make([]SessionConfig, len(c.Sessions))
	node := 2
	for i, sc := range c.Sessions {
		receivers := make([]int, len(sc.FanoutCapacities))
		for k, fc := range sc.FanoutCapacities {
			g.AddLink(hub, node, fc)
			receivers[k] = node
			node++
		}
		sessions[i] = &netmodel.Session{Sender: sender, Receivers: receivers, Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap}
		sessCfgs[i] = SessionConfig{Protocol: sc.Protocol, Layers: sc.Layers}
	}
	net, err := routing.BuildNetwork(g, sessions)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Network:      net,
		Links:        CapacityLinks(net.NumLinks()),
		Sessions:     sessCfgs,
		Packets:      c.Packets,
		SignalPeriod: c.SignalPeriod,
		Seed:         c.Seed,
	}, nil
}

// Mesh builds a multi-session "dumbbell mesh": ns sessions, each with
// its own sender and nr receivers, all crossing one shared backbone link
// of the given spec, with lossless sender access links and Bernoulli
// receiver access links of loss accessLoss:
//
//	sender_i --perfect-- left ==backbone== right --bernoulli-- r_{i,k}
//
// It returns the config and the backbone's link index (ns, after the ns
// sender access links).
func Mesh(ns, nr int, backbone LinkSpec, accessLoss float64, sc SessionConfig, packets int, seed uint64) (Config, int, error) {
	if ns < 1 || nr < 1 {
		return Config{}, 0, fmt.Errorf("netsim: mesh needs sessions and receivers")
	}
	// Nodes: senders 0..ns-1, left = ns, right = ns+1, receivers after.
	g := netmodel.NewGraph(ns + 2 + ns*nr)
	left, right := ns, ns+1
	for i := 0; i < ns; i++ {
		g.AddLink(i, left, 1)
	}
	bb := g.AddLink(left, right, backbone.effCapacity(1))
	sessions := make([]*netmodel.Session, ns)
	node := ns + 2
	for i := 0; i < ns; i++ {
		receivers := make([]int, nr)
		for k := 0; k < nr; k++ {
			g.AddLink(right, node, 1)
			receivers[k] = node
			node++
		}
		sessions[i] = &netmodel.Session{Sender: i, Receivers: receivers, Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap}
	}
	net, err := routing.BuildNetwork(g, sessions)
	if err != nil {
		return Config{}, 0, err
	}
	specs := make([]LinkSpec, net.NumLinks())
	specs[bb] = backbone
	for j := bb + 1; j < net.NumLinks(); j++ {
		specs[j] = LinkSpec{Kind: Bernoulli, Loss: accessLoss}
	}
	sessCfgs := make([]SessionConfig, ns)
	for i := range sessCfgs {
		sessCfgs[i] = sc
	}
	return Config{
		Network:  net,
		Links:    specs,
		Sessions: sessCfgs,
		Packets:  packets,
		Seed:     seed,
	}, bb, nil
}

// UniformChurn synthesizes a periodic leave/rejoin schedule: every
// interval time units, the next receiver (round-robin across all
// sessions of the network) leaves and rejoins downtime later, until
// horizon. It exercises pruning and fresh-join dynamics.
func UniformChurn(net *netmodel.Network, interval, downtime, horizon float64) []ChurnEvent {
	ids := net.ReceiverIDs()
	if len(ids) == 0 || interval <= 0 || downtime <= 0 {
		return nil
	}
	var evs []ChurnEvent
	i := 0
	for t := interval; t < horizon; t += interval {
		id := ids[i%len(ids)]
		evs = append(evs, ChurnEvent{Time: t, Session: id.Session, Receiver: id.Receiver, Join: false})
		evs = append(evs, ChurnEvent{Time: t + downtime, Session: id.Session, Receiver: id.Receiver, Join: true})
		i++
	}
	return evs
}
