package maxmin

import (
	"math"
	"math/rand/v2"
	"testing"

	"mlfair/internal/netmodel"
)

// activeSubNetwork rebuilds the network restricted to the active
// receivers (sessions left with none are dropped), returning the
// sub-network and, per original session, the original receiver indices
// it kept (nil for dropped sessions) — the mapping the batch
// comparison walks.
func activeSubNetwork(t *testing.T, net *netmodel.Network, active func(i, k int) bool) (*netmodel.Network, [][]int) {
	t.Helper()
	b := netmodel.NewBuilder()
	for j := 0; j < net.NumLinks(); j++ {
		b.AddLink(net.Capacity(j))
	}
	incl := make([][]int, net.NumSessions())
	for i, s := range net.Sessions() {
		var ks []int
		for k := 0; k < s.NumReceivers(); k++ {
			if active(i, k) {
				ks = append(ks, k)
			}
		}
		if len(ks) == 0 {
			continue
		}
		si := b.AddSession(s.Type, s.MaxRate, len(ks))
		if s.LinkRate != nil {
			b.SetLinkRate(si, s.LinkRate)
		}
		for x, k := range ks {
			b.SetPath(si, x, net.Path(i, k)...)
		}
		incl[i] = ks
	}
	sub, err := b.Build()
	if err != nil {
		t.Fatalf("sub-network build: %v", err)
	}
	return sub, incl
}

// compareEpochToBatch checks the incremental allocator's current
// allocation against batch AllocateGeneric on the active sub-network:
// rates within netmodel.Eps, inactive receivers at 0, and bottleneck
// causes agreeing in kind, saturating link (for link causes) and round.
func compareEpochToBatch(t *testing.T, trial, epoch int, net *netmodel.Network, inc *Incremental) {
	t.Helper()
	anyActive := false
	for i := 0; i < net.NumSessions(); i++ {
		for k := 0; k < net.Session(i).NumReceivers(); k++ {
			if inc.Active(i, k) {
				anyActive = true
			} else if inc.Rate(i, k) != 0 {
				t.Fatalf("trial %d epoch %d: departed r%d,%d has rate %v", trial, epoch, i+1, k+1, inc.Rate(i, k))
			}
		}
	}
	if !anyActive {
		return // nothing to compare: the batch side has no sessions
	}
	sub, incl := activeSubNetwork(t, net, inc.Active)
	batch, err := AllocateGeneric(sub)
	if err != nil {
		t.Fatalf("trial %d epoch %d: batch: %v", trial, epoch, err)
	}
	si := 0
	for i := range incl {
		if incl[i] == nil {
			continue
		}
		for x, k := range incl[i] {
			got := inc.Rate(i, k)
			want := batch.Alloc.Rate(si, x)
			if math.Abs(got-want) > netmodel.Eps {
				t.Fatalf("trial %d epoch %d r%d,%d: incremental %v, batch %v", trial, epoch, i+1, k+1, got, want)
			}
			gc, ok := inc.Cause(i, k)
			if !ok {
				t.Fatalf("trial %d epoch %d r%d,%d: active receiver has no cause", trial, epoch, i+1, k+1)
			}
			wc := batch.Causes[netmodel.ReceiverID{Session: si, Receiver: x}]
			if gc.Kind != wc.Kind || gc.Round != wc.Round {
				t.Fatalf("trial %d epoch %d r%d,%d: cause %+v, batch %+v", trial, epoch, i+1, k+1, gc, wc)
			}
			// The cascade's attributed link depends on the batch filler's
			// map iteration order, so only link-frozen causes pin it.
			if gc.Kind == CauseLink && gc.Link != wc.Link {
				t.Fatalf("trial %d epoch %d r%d,%d: bottleneck link %d, batch %d", trial, epoch, i+1, k+1, gc.Link, wc.Link)
			}
		}
		si++
	}
}

// TestIncrementalMatchesBatchFullMembership: the initial fill equals
// the batch allocator on the whole network.
func TestIncrementalMatchesBatchFullMembership(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	for trial := 0; trial < 80; trial++ {
		net := randNetwork(rng)
		inc, err := NewIncremental(net)
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.Fill(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		compareEpochToBatch(t, trial, 0, net, inc)
	}
}

// TestIncrementalMatchesBatchOnMembershipSequences is the
// epoch-incremental acceptance property: over random networks
// (occasionally with redundancy link-rate functions) and random
// join/leave sequences, every epoch's incremental allocation equals a
// from-scratch batch AllocateGeneric on the active sub-network — rates
// and bottleneck causes.
func TestIncrementalMatchesBatchOnMembershipSequences(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	for trial := 0; trial < 60; trial++ {
		net := randNetwork(rng)
		if rng.IntN(3) == 0 {
			fns := make([]netmodel.LinkRateFunc, net.NumSessions())
			for i := range fns {
				if rng.IntN(2) == 0 {
					fns[i] = netmodel.ScaledMax(1 + 2*rng.Float64())
				}
			}
			var err error
			net, err = net.WithLinkRates(fns)
			if err != nil {
				t.Fatal(err)
			}
		}
		inc, err := NewIncremental(net)
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.Fill(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		compareEpochToBatch(t, trial, 0, net, inc)
		ids := net.ReceiverIDs()
		for epoch := 1; epoch <= 8; epoch++ {
			for toggles := 1 + rng.IntN(3); toggles > 0; toggles-- {
				id := ids[rng.IntN(len(ids))]
				inc.SetActive(id.Session, id.Receiver, rng.IntN(2) == 0)
			}
			if err := inc.Fill(); err != nil {
				t.Fatalf("trial %d epoch %d: %v", trial, epoch, err)
			}
			compareEpochToBatch(t, trial, epoch, net, inc)
		}
	}
}

// TestIncrementalWarmStartLeaveOnly exercises the warm-started path
// specifically: pure leave sequences, one receiver per epoch, each
// epoch checked against batch.
func TestIncrementalWarmStartLeaveOnly(t *testing.T) {
	rng := rand.New(rand.NewPCG(35, 36))
	for trial := 0; trial < 60; trial++ {
		net := randNetwork(rng)
		inc, err := NewIncremental(net)
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.Fill(); err != nil {
			t.Fatal(err)
		}
		ids := net.ReceiverIDs()
		rng.Shuffle(len(ids), func(a, b int) { ids[a], ids[b] = ids[b], ids[a] })
		for epoch, id := range ids {
			inc.SetActive(id.Session, id.Receiver, false)
			if err := inc.Fill(); err != nil {
				t.Fatalf("trial %d epoch %d: %v", trial, epoch, err)
			}
			compareEpochToBatch(t, trial, epoch+1, net, inc)
		}
	}
}

// TestIncrementalLeaveNeverLowersMinimum: the warm-start lemma — after
// a leave-only epoch, no remaining receiver's fair rate falls below
// the previous epoch's minimum active rate (individual rates CAN drop,
// e.g. when a single-rate session un-bottlenecks and rises into a
// shared link; only the minimum is invariant).
func TestIncrementalLeaveNeverLowersMinimum(t *testing.T) {
	rng := rand.New(rand.NewPCG(37, 38))
	for trial := 0; trial < 120; trial++ {
		net := randNetwork(rng)
		inc, err := NewIncremental(net)
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.Fill(); err != nil {
			t.Fatal(err)
		}
		ids := net.ReceiverIDs()
		rng.Shuffle(len(ids), func(a, b int) { ids[a], ids[b] = ids[b], ids[a] })
		for _, gone := range ids[:1+rng.IntN(len(ids))] {
			oldMin := math.Inf(1)
			for i := range net.Sessions() {
				for k := 0; k < net.Session(i).NumReceivers(); k++ {
					if inc.Active(i, k) && inc.Rate(i, k) < oldMin {
						oldMin = inc.Rate(i, k)
					}
				}
			}
			inc.SetActive(gone.Session, gone.Receiver, false)
			if err := inc.Fill(); err != nil {
				t.Fatal(err)
			}
			for i := range net.Sessions() {
				for k := 0; k < net.Session(i).NumReceivers(); k++ {
					if inc.Active(i, k) && netmodel.Less(inc.Rate(i, k), oldMin) {
						t.Fatalf("trial %d: r%d,%d at %v fell below previous minimum %v after a leave",
							trial, i+1, k+1, inc.Rate(i, k), oldMin)
					}
				}
			}
		}
	}
}

// TestIncrementalFillAllocationFree: after the first fill warms the
// scratch buffers, an epoch (toggle + fill) performs zero allocations.
func TestIncrementalFillAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewPCG(39, 40))
	net := randNetwork(rng)
	inc, err := NewIncremental(net)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Fill(); err != nil {
		t.Fatal(err)
	}
	ids := net.ReceiverIDs()
	join := false
	allocs := testing.AllocsPerRun(50, func() {
		id := ids[0]
		inc.SetActive(id.Session, id.Receiver, join)
		join = !join
		if err := inc.Fill(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("epoch fill allocates %v times", allocs)
	}
}

// TestTimelineEpochs: the timeline opens one epoch per distinct event
// time, folds time-0 events into the initial epoch, and zeroes
// departed receivers.
func TestTimelineEpochs(t *testing.T) {
	b := netmodel.NewBuilder()
	b.AddLink(12)
	s0 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 2)
	b.SetPath(s0, 0, 0)
	b.SetPath(s0, 1, 0)
	s1 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
	b.SetPath(s1, 0, 0)
	net := b.MustBuild()

	epochs, err := Timeline(net, []MembershipEvent{
		{Time: 10, Session: 1, Receiver: 0, Join: false},
		{Time: 20, Session: 0, Receiver: 0, Join: true},
		{Time: 0, Session: 0, Receiver: 0, Join: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 3 {
		t.Fatalf("got %d epochs, want 3", len(epochs))
	}
	for x, want := range []float64{0, 10, 20} {
		if epochs[x].Time != want {
			t.Fatalf("epoch %d at %v, want %v", x, epochs[x].Time, want)
		}
	}
	// Epoch 0: r1,1 departed at t=0; the two remaining sessions split 12.
	if r := epochs[0].Rates[0][0]; r != 0 {
		t.Fatalf("epoch 0: departed r1,1 has rate %v", r)
	}
	if r := epochs[0].Rates[0][1]; !netmodel.Eq(r, 6) {
		t.Fatalf("epoch 0: r1,2 = %v, want 6", r)
	}
	if r := epochs[0].Rates[1][0]; !netmodel.Eq(r, 6) {
		t.Fatalf("epoch 0: r2,1 = %v, want 6", r)
	}
	// Epoch 1: session 2's receiver leaves; r1,2 takes the whole link.
	if r := epochs[1].Rates[0][1]; !netmodel.Eq(r, 12) {
		t.Fatalf("epoch 1: r1,2 = %v, want 12", r)
	}
	if r := epochs[1].Rates[1][0]; r != 0 {
		t.Fatalf("epoch 1: departed r2,1 has rate %v", r)
	}
	// Epoch 2: r1,1 rejoins its own session — multicast sharing under
	// v = max, so both of session 1's receivers ride the full 12.
	if r := epochs[2].Rates[0][0]; !netmodel.Eq(r, 12) {
		t.Fatalf("epoch 2: rejoined r1,1 = %v, want 12", r)
	}
	if r := epochs[2].Rates[0][1]; !netmodel.Eq(r, 12) {
		t.Fatalf("epoch 2: r1,2 = %v, want 12", r)
	}
}

// TestTimelineValidation rejects malformed membership events.
func TestTimelineValidation(t *testing.T) {
	b := netmodel.NewBuilder()
	b.AddLink(1)
	s := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
	b.SetPath(s, 0, 0)
	net := b.MustBuild()
	for _, ev := range []MembershipEvent{
		{Time: -1},
		{Time: math.NaN()},
		{Session: 9},
		{Receiver: 5},
		{Session: -1},
	} {
		if _, err := Timeline(net, []MembershipEvent{ev}); err == nil {
			t.Errorf("event %+v accepted", ev)
		}
	}
}
