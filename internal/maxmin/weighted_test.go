package maxmin

import (
	"math/rand/v2"
	"testing"

	"mlfair/internal/netmodel"
	"mlfair/internal/vecorder"
)

// TestWeightedProportionalSplit: two unicast sessions with weights 1 and
// 3 on one link split it 1:3 (the TCP-fairness shape for RTTs 1 and 1/3).
func TestWeightedProportionalSplit(t *testing.T) {
	b := netmodel.NewBuilder()
	l := b.AddLink(10)
	s1 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
	s2 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
	b.SetPath(s1, 0, l)
	b.SetPath(s2, 0, l)
	net := b.MustBuild()
	res, err := AllocateWeighted(net, Weights{{1}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	wantRate(t, res.Alloc, 0, 0, 2.5)
	wantRate(t, res.Alloc, 1, 0, 7.5)
	if err := res.Alloc.Feasible(); err != nil {
		t.Fatal(err)
	}
}

// TestWeightedMatchesUnweightedWithUniform: uniform weights reproduce
// Allocate exactly on the paper figures and random networks.
func TestWeightedMatchesUnweightedWithUniform(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 102))
	for trial := 0; trial < 80; trial++ {
		net := randNetwork(rng)
		plain, err := Allocate(net)
		if err != nil {
			t.Fatal(err)
		}
		weighted, err := AllocateWeighted(net, UniformWeights(net))
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range net.ReceiverIDs() {
			a, b := plain.Alloc.RateOf(id), weighted.Alloc.RateOf(id)
			if !netmodel.Eq(a, b) && (a-b > 1e-6 || b-a > 1e-6) {
				t.Fatalf("trial %d %v: plain %v weighted %v", trial, id, a, b)
			}
		}
	}
}

// TestWeightedKappa: κ binds the rate (not the normalized rate).
func TestWeightedKappa(t *testing.T) {
	b := netmodel.NewBuilder()
	l := b.AddLink(100)
	s1 := b.AddSession(netmodel.MultiRate, 6, 1) // κ=6
	s2 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
	b.SetPath(s1, 0, l)
	b.SetPath(s2, 0, l)
	net := b.MustBuild()
	// Weight 3 would give s1 75 without κ; κ pins it at 6, s2 takes 94.
	res, err := AllocateWeighted(net, Weights{{3}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	wantRate(t, res.Alloc, 0, 0, 6)
	wantRate(t, res.Alloc, 1, 0, 94)
	if c := res.Causes[netmodel.ReceiverID{Session: 0, Receiver: 0}]; c.Kind != CauseMaxRate {
		t.Fatalf("cause = %+v", c)
	}
}

// TestWeightedSamePathProportional: same-path receivers end with rates
// proportional to weights (the weighted analogue of same-path-receiver-
// fairness / TCP-fairness).
func TestWeightedSamePathProportional(t *testing.T) {
	b := netmodel.NewBuilder()
	l1 := b.AddLink(12)
	l2 := b.AddLink(30)
	for i := 0; i < 3; i++ {
		s := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
		b.SetPath(s, 0, l1, l2)
	}
	net := b.MustBuild()
	w := Weights{{1}, {2}, {3}}
	res, err := AllocateWeighted(net, w)
	if err != nil {
		t.Fatal(err)
	}
	// Split 12 in proportion 1:2:3 -> 2, 4, 6.
	wantRate(t, res.Alloc, 0, 0, 2)
	wantRate(t, res.Alloc, 1, 0, 4)
	wantRate(t, res.Alloc, 2, 0, 6)
	// Normalized rates are equal.
	nv := NormalizedVector(res.Alloc, w)
	for _, x := range nv {
		if !netmodel.Eq(x, 2) {
			t.Fatalf("normalized vector %v, want all 2", nv)
		}
	}
}

// TestWeightedMulticast: weights interact with the session max link
// rate: the session's usage follows its fastest (weighted) receiver.
func TestWeightedMulticast(t *testing.T) {
	b := netmodel.NewBuilder()
	shared := b.AddLink(12)
	tail := b.AddLink(100)
	s1 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 2)
	s2 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
	b.SetPath(s1, 0, shared)
	b.SetPath(s1, 1, shared, tail)
	b.SetPath(s2, 0, shared)
	net := b.MustBuild()
	// s1's receivers weighted 2 and 1; s2 weighted 1.
	// u_shared = max(2λ, λ) + λ = 3λ = 12 -> λ=4: rates (8, 4; 4).
	res, err := AllocateWeighted(net, Weights{{2, 1}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	wantRate(t, res.Alloc, 0, 0, 8)
	wantRate(t, res.Alloc, 0, 1, 4)
	wantRate(t, res.Alloc, 1, 0, 4)
}

// TestWeightedNormalizedLemma1: random feasible allocations are
// min-unfavorable to the weighted MMF in normalized space.
func TestWeightedNormalizedLemma1(t *testing.T) {
	rng := rand.New(rand.NewPCG(103, 104))
	for trial := 0; trial < 60; trial++ {
		net := randNetwork(rng)
		// Random weights; single-rate sessions get uniform weights.
		w := UniformWeights(net)
		for i, s := range net.Sessions() {
			if s.Type == netmodel.SingleRate {
				x := 0.5 + 2*rng.Float64()
				for k := range w[i] {
					w[i][k] = x
				}
				continue
			}
			for k := range w[i] {
				w[i][k] = 0.5 + 2*rng.Float64()
			}
		}
		res, err := AllocateWeighted(net, w)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Alloc.Feasible(); err != nil {
			t.Fatalf("infeasible: %v", err)
		}
		ref := NormalizedVector(res.Alloc, w)
		for x := 0; x < 3; x++ {
			cand := randFeasible(rng, net)
			if !vecorder.LessEq(NormalizedVector(cand, w), ref) {
				t.Fatalf("feasible allocation beats weighted MMF in normalized order:\n cand %v\n  ref %v",
					NormalizedVector(cand, w), ref)
			}
		}
	}
}

func TestWeightsValidation(t *testing.T) {
	b := netmodel.NewBuilder()
	l := b.AddLink(10)
	s := b.AddSession(netmodel.SingleRate, netmodel.NoRateCap, 2)
	b.SetPath(s, 0, l)
	b.SetPath(s, 1, l)
	net := b.MustBuild()

	if _, err := AllocateWeighted(net, Weights{{1}}); err == nil {
		t.Fatal("wrong receiver count accepted")
	}
	if _, err := AllocateWeighted(net, Weights{{1, 2}}); err == nil {
		t.Fatal("unequal single-rate weights accepted")
	}
	if _, err := AllocateWeighted(net, Weights{{1, 0}}); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := AllocateWeighted(net, nil); err != nil {
		t.Fatal("nil weights should fall back to Allocate")
	}
	if _, err := AllocateWeighted(net, Weights{{2, 2}}); err != nil {
		t.Fatalf("valid weights rejected: %v", err)
	}
}

func TestInverseRTTWeights(t *testing.T) {
	w := InverseRTTWeights([][]float64{{0.5, 2}})
	if w[0][0] != 2 || w[0][1] != 0.5 {
		t.Fatalf("weights = %v", w)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero RTT accepted")
		}
	}()
	InverseRTTWeights([][]float64{{0}})
}
