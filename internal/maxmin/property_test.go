package maxmin

import (
	"math"
	"math/rand/v2"
	"testing"

	"mlfair/internal/netmodel"
	"mlfair/internal/vecorder"
)

// randNetwork generates a random abstract network: 2-6 links with integer
// capacities, 1-4 sessions of random type with 1-3 receivers crossing
// random link subsets, occasionally finite κ.
func randNetwork(rng *rand.Rand) *netmodel.Network {
	nl := 2 + rng.IntN(5)
	b := netmodel.NewBuilder()
	links := make([]int, nl)
	for i := range links {
		links[i] = b.AddLink(1 + float64(rng.IntN(20)))
	}
	ns := 1 + rng.IntN(4)
	for i := 0; i < ns; i++ {
		typ := netmodel.MultiRate
		if rng.IntN(2) == 0 {
			typ = netmodel.SingleRate
		}
		kappa := netmodel.NoRateCap
		if rng.IntN(3) == 0 {
			kappa = 1 + 10*rng.Float64()
		}
		nr := 1 + rng.IntN(3)
		s := b.AddSession(typ, kappa, nr)
		for k := 0; k < nr; k++ {
			var p []int
			for _, l := range links {
				if rng.IntN(3) == 0 {
					p = append(p, l)
				}
			}
			if len(p) == 0 {
				p = []int{links[rng.IntN(nl)]}
			}
			b.SetPath(s, k, p...)
		}
	}
	return b.MustBuild()
}

// randFeasible produces a random feasible allocation by hill-climbing:
// repeatedly pick a receiver and try to raise it by a random step,
// keeping feasibility (single-rate sessions are raised jointly).
func randFeasible(rng *rand.Rand, net *netmodel.Network) *netmodel.Allocation {
	a := netmodel.NewAllocation(net)
	ids := net.ReceiverIDs()
	for step := 0; step < 60; step++ {
		id := ids[rng.IntN(len(ids))]
		delta := rng.Float64() * 3
		c := a.Clone()
		s := net.Session(id.Session)
		if s.Type == netmodel.SingleRate {
			nv := c.Rate(id.Session, 0) + delta
			for k := 0; k < s.NumReceivers(); k++ {
				c.SetRate(id.Session, k, nv)
			}
		} else {
			c.SetRate(id.Session, id.Receiver, c.RateOf(id)+delta)
		}
		if c.Feasible() == nil {
			a = c
		}
	}
	return a
}

// TestLemma1RandomFeasibleDominated: every feasible allocation is
// min-unfavorable to the max-min fair allocation.
func TestLemma1RandomFeasibleDominated(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for trial := 0; trial < 120; trial++ {
		net := randNetwork(rng)
		res, err := Allocate(net)
		if err != nil {
			t.Fatalf("Allocate: %v", err)
		}
		for f := 0; f < 4; f++ {
			cand := randFeasible(rng, net)
			if !Dominates(res.Alloc, cand) {
				t.Fatalf("feasible allocation %v not dominated by max-min %v",
					cand.OrderedVector(), res.Alloc.OrderedVector())
			}
		}
	}
}

// TestSaturationNecessaryCondition: no receiver of a max-min fair
// allocation can be unilaterally increased.
func TestSaturationNecessaryCondition(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	for trial := 0; trial < 200; trial++ {
		net := randNetwork(rng)
		res, err := Allocate(net)
		if err != nil {
			t.Fatalf("Allocate: %v", err)
		}
		if id, ok := CheckSaturation(res.Alloc); !ok {
			t.Fatalf("receiver %v of %s can be unilaterally increased", id, res.Alloc)
		}
	}
}

// TestFeasibilityAlways: allocator output is feasible on random networks,
// including with redundancy functions.
func TestFeasibilityAlways(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	for trial := 0; trial < 150; trial++ {
		net := randNetwork(rng)
		if rng.IntN(2) == 0 {
			fns := make([]netmodel.LinkRateFunc, net.NumSessions())
			for i := range fns {
				if rng.IntN(2) == 0 {
					fns[i] = netmodel.ScaledMax(1 + 2*rng.Float64())
				}
			}
			var err error
			net, err = net.WithLinkRates(fns)
			if err != nil {
				t.Fatal(err)
			}
		}
		res, err := Allocate(net)
		if err != nil {
			t.Fatalf("Allocate: %v", err)
		}
		if err := res.Alloc.Feasible(); err != nil {
			t.Fatalf("infeasible output: %v", err)
		}
	}
}

// TestGenericMatchesFastPathRandom cross-checks the two step
// computations on random default-v networks.
func TestGenericMatchesFastPathRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 18))
	for trial := 0; trial < 100; trial++ {
		net := randNetwork(rng)
		fast, err := Allocate(net)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := AllocateGeneric(net)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range net.ReceiverIDs() {
			f, g := fast.Alloc.RateOf(id), gen.Alloc.RateOf(id)
			if math.Abs(f-g) > 1e-6 {
				t.Fatalf("trial %d %v: fast=%v generic=%v", trial, id, f, g)
			}
		}
	}
}

// TestLemma3ReplacementMoreFair: converting single-rate sessions to
// multi-rate makes the max-min fair allocation ≽_m the original.
func TestLemma3ReplacementMoreFair(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 20))
	for trial := 0; trial < 120; trial++ {
		net := randNetwork(rng)
		// N̄: as generated. N: flip a random subset of single-rate
		// sessions to multi-rate (so multi-rate(N̄) ⊆ multi-rate(N)).
		types := make([]netmodel.SessionType, net.NumSessions())
		for i, s := range net.Sessions() {
			types[i] = s.Type
			if s.Type == netmodel.SingleRate && rng.IntN(2) == 0 {
				types[i] = netmodel.MultiRate
			}
		}
		upgraded, err := net.WithSessionTypes(types)
		if err != nil {
			t.Fatal(err)
		}
		resBar, err := Allocate(net)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Allocate(upgraded)
		if err != nil {
			t.Fatal(err)
		}
		if !vecorder.LessEq(resBar.Alloc.OrderedVector(), res.Alloc.OrderedVector()) {
			t.Fatalf("Lemma 3 violated:\n  before: %v\n  after:  %v",
				resBar.Alloc.OrderedVector(), res.Alloc.OrderedVector())
		}
	}
}

// TestCorollary1AllMultiRateMostFair: the all-multi-rate network
// dominates every other type assignment.
func TestCorollary1AllMultiRateMostFair(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for trial := 0; trial < 80; trial++ {
		net := randNetwork(rng)
		all := make([]netmodel.SessionType, net.NumSessions())
		for i := range all {
			all[i] = netmodel.MultiRate
		}
		allMulti, err := net.WithSessionTypes(all)
		if err != nil {
			t.Fatal(err)
		}
		resAll, err := Allocate(allMulti)
		if err != nil {
			t.Fatal(err)
		}
		resAny, err := Allocate(net)
		if err != nil {
			t.Fatal(err)
		}
		if !vecorder.LessEq(resAny.Alloc.OrderedVector(), resAll.Alloc.OrderedVector()) {
			t.Fatalf("Corollary 1 violated:\n  mixed: %v\n  all-M: %v",
				resAny.Alloc.OrderedVector(), resAll.Alloc.OrderedVector())
		}
	}
}

// TestLemma4RedundancyLessFair: scaling link-rate functions up makes the
// max-min fair allocation ≼_m the efficient one.
func TestLemma4RedundancyLessFair(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 24))
	for trial := 0; trial < 120; trial++ {
		net := randNetwork(rng)
		fns := make([]netmodel.LinkRateFunc, net.NumSessions())
		for i := range fns {
			if rng.IntN(2) == 0 {
				fns[i] = netmodel.ScaledMax(1 + 3*rng.Float64())
			}
		}
		redundant, err := net.WithLinkRates(fns)
		if err != nil {
			t.Fatal(err)
		}
		resEff, err := Allocate(net)
		if err != nil {
			t.Fatal(err)
		}
		resRed, err := Allocate(redundant)
		if err != nil {
			t.Fatal(err)
		}
		if !vecorder.LessEq(resRed.Alloc.OrderedVector(), resEff.Alloc.OrderedVector()) {
			t.Fatalf("Lemma 4 violated:\n  redundant: %v\n  efficient: %v",
				resRed.Alloc.OrderedVector(), resEff.Alloc.OrderedVector())
		}
	}
}

// TestSingleSessionFlipNeverHurtsOwnReceivers: with all other types
// fixed, a session's receivers do at least as well multi-rate as
// single-rate (Section 2.5 / TR Lemma 9).
func TestSingleSessionFlipNeverHurtsOwnReceivers(t *testing.T) {
	rng := rand.New(rand.NewPCG(25, 26))
	for trial := 0; trial < 120; trial++ {
		net := randNetwork(rng)
		i := rng.IntN(net.NumSessions())
		typesS := make([]netmodel.SessionType, net.NumSessions())
		typesM := make([]netmodel.SessionType, net.NumSessions())
		for x, s := range net.Sessions() {
			typesS[x], typesM[x] = s.Type, s.Type
		}
		typesS[i] = netmodel.SingleRate
		typesM[i] = netmodel.MultiRate
		netS, err := net.WithSessionTypes(typesS)
		if err != nil {
			t.Fatal(err)
		}
		netM, err := net.WithSessionTypes(typesM)
		if err != nil {
			t.Fatal(err)
		}
		resS, err := Allocate(netS)
		if err != nil {
			t.Fatal(err)
		}
		resM, err := Allocate(netM)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < net.Session(i).NumReceivers(); k++ {
			if netmodel.Less(resM.Alloc.Rate(i, k), resS.Alloc.Rate(i, k)) {
				t.Fatalf("receiver r%d,%d worse multi-rate (%v) than single-rate (%v)",
					i+1, k+1, resM.Alloc.Rate(i, k), resS.Alloc.Rate(i, k))
			}
		}
	}
}

// TestDeterminism: Allocate is a pure function of the network.
func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewPCG(27, 28))
	for trial := 0; trial < 40; trial++ {
		net := randNetwork(rng)
		r1, err := Allocate(net)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Allocate(net)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range net.ReceiverIDs() {
			if r1.Alloc.RateOf(id) != r2.Alloc.RateOf(id) {
				t.Fatal("non-deterministic allocation")
			}
		}
	}
}
