package maxmin

import (
	"mlfair/internal/netmodel"
	"mlfair/internal/vecorder"
)

// CanIncrease reports whether receiver id's rate can be raised by delta
// while keeping every other rate fixed and the allocation feasible. In a
// max-min fair allocation this must be false for every receiver and every
// delta > 0 (otherwise the raised allocation would contradict
// Definition 1, since no other receiver's rate decreases).
func CanIncrease(a *netmodel.Allocation, id netmodel.ReceiverID, delta float64) bool {
	c := a.Clone()
	c.SetRate(id.Session, id.Receiver, c.RateOf(id)+delta)
	if c.Network().Session(id.Session).Type == netmodel.SingleRate {
		// Raising one receiver of a single-rate session forces the whole
		// session up.
		for k := 0; k < c.Network().Session(id.Session).NumReceivers(); k++ {
			c.SetRate(id.Session, k, c.Rate(id.Session, id.Receiver))
		}
	}
	return c.Feasible() == nil
}

// CheckSaturation verifies the weak-Pareto necessary condition of
// max-min fairness: every receiver is at κ_i or cannot be unilaterally
// increased. It returns the first violating receiver and false, or a zero
// ID and true.
func CheckSaturation(a *netmodel.Allocation) (netmodel.ReceiverID, bool) {
	const delta = 1e-6
	for _, id := range a.Network().ReceiverIDs() {
		if netmodel.Geq(a.RateOf(id), a.Network().Session(id.Session).MaxRate) {
			continue
		}
		if CanIncrease(a, id, delta) {
			return id, false
		}
	}
	return netmodel.ReceiverID{}, true
}

// Dominates reports whether candidate is min-unfavorable-or-equal to
// reference: reference ≽_m candidate. Lemma 1 states every feasible
// allocation is ≼_m the max-min fair allocation, so this must hold with
// reference = Allocate(net).Alloc for any feasible candidate.
func Dominates(reference, candidate *netmodel.Allocation) bool {
	return vecorder.LessEq(candidate.OrderedVector(), reference.OrderedVector())
}
