// Package maxmin computes max-min fair rate allocations for networks of
// mixed single-rate and multi-rate multicast sessions, implementing the
// construction algorithm of Appendix A in Rubenstein/Kurose/Towsley
// (SIGCOMM '99).
//
// The algorithm is progressive filling: a "water level" rises uniformly
// across all still-active receivers; a receiver freezes when it reaches
// its session's maximum desired rate κ_i or when a link on its data-path
// becomes fully utilized; when a receiver of a single-rate session
// freezes, the whole session freezes (step 7 of the paper's algorithm).
// The resulting allocation is the unique max-min fair allocation for the
// network's session-type mapping Γ (Lemma 5 / Corollary 5 of the paper's
// technical report).
//
// Sessions may carry arbitrary link-rate ("redundancy") functions v_i
// (Section 3.1 of the paper); the allocator requires only that v_i be
// monotone and continuous and dominate max. When every session uses the
// efficient v_i = max, a closed-form step computation is used (exactly
// the paper's step 3); otherwise the step is found by bisection.
package maxmin

import (
	"errors"
	"fmt"
	"math"

	"mlfair/internal/netmodel"
)

// CauseKind classifies why a receiver's rate froze during filling.
type CauseKind int

const (
	// CauseLink means a fully utilized link on the receiver's data-path
	// stopped it.
	CauseLink CauseKind = iota
	// CauseMaxRate means the receiver reached its session's κ_i.
	CauseMaxRate
	// CauseSessionPeer means the receiver belongs to a single-rate
	// session in which some other receiver froze.
	CauseSessionPeer
)

// String names the cause.
func (k CauseKind) String() string {
	switch k {
	case CauseLink:
		return "bottleneck-link"
	case CauseMaxRate:
		return "max-desired-rate"
	case CauseSessionPeer:
		return "single-rate-peer"
	}
	return fmt.Sprintf("CauseKind(%d)", int(k))
}

// Cause explains one receiver's final rate.
type Cause struct {
	Kind CauseKind
	// Link is the saturating link index for CauseLink, or the peer's
	// bottleneck link for CauseSessionPeer; -1 for CauseMaxRate.
	Link int
	// Round is the filling iteration (0-based) at which the receiver froze.
	Round int
}

// Result is a max-min fair allocation plus per-receiver diagnostics.
type Result struct {
	Alloc *netmodel.Allocation
	// Causes records, for every receiver, why its rate stopped rising.
	Causes map[netmodel.ReceiverID]Cause
	// Rounds is the number of filling iterations performed.
	Rounds int
}

// ErrUnbounded is returned when some receiver's rate is bounded neither
// by a κ_i nor by any finite link capacity.
var ErrUnbounded = errors.New("maxmin: allocation unbounded (infinite capacity and no κ)")

// Allocate computes the max-min fair allocation of net. It never mutates
// the network. An error is returned only for unbounded inputs or if the
// filling fails to make progress (which indicates an invalid link-rate
// function, e.g. one that does not dominate max).
func Allocate(net *netmodel.Network) (*Result, error) {
	f := newFiller(net)
	return f.run()
}

// AllocateGeneric is Allocate with the closed-form fast path disabled:
// every step is computed by bisection against the sessions' link-rate
// functions. It exists to cross-check the fast path and to benchmark the
// cost of generality (see DESIGN.md ablations); outputs are identical
// within tolerance.
func AllocateGeneric(net *netmodel.Network) (*Result, error) {
	f := newFiller(net)
	f.forceGeneric = true
	return f.run()
}

// filler carries the mutable state of one progressive-filling run.
type filler struct {
	net          *netmodel.Network
	alloc        *netmodel.Allocation
	active       map[netmodel.ReceiverID]bool
	level        float64 // common normalized level of all active receivers
	causes       map[netmodel.ReceiverID]Cause
	forceGeneric bool
	// weights holds per-receiver weights for weighted max-min fairness
	// (AllocateWeighted); nil means uniform weight 1, in which case the
	// level is the common rate and the paper's closed-form step applies.
	weights [][]float64

	// scratch reused across rounds
	rateBuf []float64
}

// weight returns w_{i,k} (1 when unweighted).
func (f *filler) weight(i, k int) float64 {
	if f.weights == nil {
		return 1
	}
	return f.weights[i][k]
}

func newFiller(net *netmodel.Network) *filler {
	f := &filler{
		net:    net,
		alloc:  netmodel.NewAllocation(net),
		active: make(map[netmodel.ReceiverID]bool, net.NumReceivers()),
		causes: make(map[netmodel.ReceiverID]Cause, net.NumReceivers()),
	}
	for _, id := range net.ReceiverIDs() {
		f.active[id] = true
	}
	return f
}

func (f *filler) run() (*Result, error) {
	round := 0
	for len(f.active) > 0 {
		t, err := f.step()
		if err != nil {
			return nil, err
		}
		f.level += t
		for id := range f.active {
			f.alloc.SetRate(id.Session, id.Receiver, f.weight(id.Session, id.Receiver)*f.level)
		}
		removed := f.freeze(round)
		if removed == 0 {
			return nil, fmt.Errorf("maxmin: no progress at level %v after round %d (invalid link-rate function?)", f.level, round)
		}
		round++
	}
	return &Result{Alloc: f.alloc, Causes: f.causes, Rounds: round}, nil
}

// step returns the largest uniform increment t for the active receivers
// that keeps the allocation feasible (the sup of the paper's step 3).
func (f *filler) step() (float64, error) {
	// κ bound: a receiver's rate w·(level+t) may not exceed its
	// session's κ, so t <= κ/w - level.
	t := math.Inf(1)
	for id := range f.active {
		if slack := f.net.Session(id.Session).MaxRate/f.weight(id.Session, id.Receiver) - f.level; slack < t {
			t = slack
		}
	}
	if t < 0 {
		t = 0
	}
	if f.weights == nil && f.allMaxLinkRate() && !f.forceGeneric {
		return f.closedFormStep(t)
	}
	return f.bisectStep(t)
}

func (f *filler) allMaxLinkRate() bool {
	for _, s := range f.net.Sessions() {
		if s.LinkRate != nil {
			return false
		}
	}
	return true
}

// closedFormStep implements the paper's step 3 exactly: on each link the
// total rate rises with slope Σ_i δ_{i,j}(T) where δ is 1 if session i
// has an active receiver crossing the link.
func (f *filler) closedFormStep(t float64) (float64, error) {
	for j := 0; j < f.net.NumLinks(); j++ {
		slope := 0
		base := 0.0
		for _, sr := range f.net.OnLink(j) {
			hasActive := false
			frozenMax := 0.0
			for _, k := range sr.Receivers {
				if f.active[netmodel.ReceiverID{Session: sr.Session, Receiver: k}] {
					hasActive = true
				} else if r := f.alloc.Rate(sr.Session, k); r > frozenMax {
					frozenMax = r
				}
			}
			if hasActive {
				slope++
				base += f.level
			} else {
				base += frozenMax
			}
		}
		if slope == 0 {
			continue
		}
		tj := (f.net.Capacity(j) - base) / float64(slope)
		if tj < 0 {
			tj = 0
		}
		if tj < t {
			t = tj
		}
	}
	if math.IsInf(t, 1) {
		return 0, ErrUnbounded
	}
	return t, nil
}

// bisectStep finds the sup increment by bisection against arbitrary
// monotone link-rate functions.
func (f *filler) bisectStep(kappaBound float64) (float64, error) {
	// Upper bound: since every v_i dominates max, on any link crossed by
	// an active receiver of weight w, u_j >= w·(level + t), so
	// t <= c_j/w - level.
	hi := kappaBound
	for j := 0; j < f.net.NumLinks(); j++ {
		if w := f.maxActiveWeight(j); w > 0 {
			if b := f.net.Capacity(j)/w - f.level; b < hi {
				hi = b
			}
		}
	}
	if math.IsInf(hi, 1) {
		return 0, ErrUnbounded
	}
	if hi <= 0 {
		return 0, nil
	}
	if f.feasibleAt(hi) {
		return hi, nil
	}
	lo := 0.0
	for iter := 0; iter < 200 && hi-lo > 1e-13*(1+hi); iter++ {
		mid := (lo + hi) / 2
		if f.feasibleAt(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// maxActiveWeight returns the largest weight among active receivers
// crossing link j, or 0 when none is active there.
func (f *filler) maxActiveWeight(j int) float64 {
	w := 0.0
	for _, sr := range f.net.OnLink(j) {
		for _, k := range sr.Receivers {
			if f.active[netmodel.ReceiverID{Session: sr.Session, Receiver: k}] {
				if x := f.weight(sr.Session, k); x > w {
					w = x
				}
			}
		}
	}
	return w
}

// feasibleAt reports whether raising all active receivers by t keeps
// every link within capacity.
func (f *filler) feasibleAt(t float64) bool {
	for j := 0; j < f.net.NumLinks(); j++ {
		u := 0.0
		for _, sr := range f.net.OnLink(j) {
			u += f.sessionLinkRateAt(sr, t)
		}
		if u > f.net.Capacity(j)+1e-15 {
			return false
		}
	}
	return true
}

func (f *filler) sessionLinkRateAt(sr netmodel.SessionReceivers, t float64) float64 {
	f.rateBuf = f.rateBuf[:0]
	for _, k := range sr.Receivers {
		r := f.alloc.Rate(sr.Session, k)
		if f.active[netmodel.ReceiverID{Session: sr.Session, Receiver: k}] {
			r = f.weight(sr.Session, k) * (f.level + t)
		}
		f.rateBuf = append(f.rateBuf, r)
	}
	return f.net.Session(sr.Session).EffectiveLinkRate(f.rateBuf)
}

// freeze removes receivers that can rise no further (steps 6 and 7),
// recording causes. It returns the number of receivers frozen.
func (f *filler) freeze(round int) int {
	// Saturated links.
	saturated := make([]bool, f.net.NumLinks())
	for j := 0; j < f.net.NumLinks(); j++ {
		u := 0.0
		for _, sr := range f.net.OnLink(j) {
			u += f.sessionLinkRateAt(sr, 0)
		}
		saturated[j] = netmodel.Geq(u, f.net.Capacity(j))
	}
	var frozen []netmodel.ReceiverID
	for id := range f.active {
		s := f.net.Session(id.Session)
		if netmodel.Geq(f.weight(id.Session, id.Receiver)*f.level, s.MaxRate) {
			f.causes[id] = Cause{Kind: CauseMaxRate, Link: -1, Round: round}
			frozen = append(frozen, id)
			continue
		}
		for _, j := range f.net.Path(id.Session, id.Receiver) {
			if saturated[j] {
				f.causes[id] = Cause{Kind: CauseLink, Link: j, Round: round}
				frozen = append(frozen, id)
				break
			}
		}
	}
	for _, id := range frozen {
		delete(f.active, id)
	}
	// Step 7: single-rate cascade.
	n := len(frozen)
	for _, id := range frozen {
		if f.net.Session(id.Session).Type != netmodel.SingleRate {
			continue
		}
		link := f.causes[id].Link
		for k := 0; k < f.net.Session(id.Session).NumReceivers(); k++ {
			peer := netmodel.ReceiverID{Session: id.Session, Receiver: k}
			if f.active[peer] {
				delete(f.active, peer)
				f.causes[peer] = Cause{Kind: CauseSessionPeer, Link: link, Round: round}
				n++
			}
		}
	}
	return n
}
