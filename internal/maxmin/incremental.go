package maxmin

import (
	"fmt"
	"math"
	"slices"

	"mlfair/internal/netmodel"
)

// Incremental maintains the max-min fair allocation of a network
// across membership epochs: receivers join and leave (churn, slow-leave
// expiry), and each Fill recomputes the fair allocation for the current
// membership by progressive filling — warm-started from the previous
// fill instead of rebuilt from scratch.
//
// Versus running Allocate on a rebuilt sub-network per epoch, the
// incremental allocator
//
//   - keeps every per-link crossing structure as flat index arrays built
//     once (the batch filler's maps are gone), with per-(link, session)
//     active-receiver counts maintained in O(path length) per membership
//     toggle rather than rescanned per epoch;
//   - reuses all filling scratch across epochs, so an epoch allocates
//     nothing; and
//   - warm-starts the water level after leave-only epochs: link usage
//     at a common level is monotone in the receiver set (every v_i
//     dominates a monotone max), so before the previous epoch's minimum
//     active rate no link can saturate, no κ can bind, and no cascade
//     can trigger — no receiver freezes strictly below that minimum,
//     and the fill may start there instead of at zero. (Individual
//     rates above the minimum can still drop after a leave — a
//     single-rate session whose bottleneck departs rises into links it
//     shares — which is why the warm start is pinned to the minimum.)
//
// Departed receivers have rate 0 and no cause. The fill itself follows
// Allocate exactly (progressive filling with the closed-form step when
// every session uses the efficient v = max, bisection otherwise), so
// epoch allocations equal the batch allocator's output on the
// active-receiver sub-network — the property the incremental-vs-batch
// test pins.
type Incremental struct {
	net *netmodel.Network

	// Receiver flat indexing: rid = off[session] + receiver.
	off []int32
	nR  int

	// Membership and the current allocation.
	active []bool
	rates  []float64
	causes []Cause
	frozen []bool // rid froze in the last fill (causes[rid] is valid)
	rounds int

	// Per-link slots, one per (link, session crossing it), CSR over
	// links: slot s covers sessions slotSess[s] with receiver rids
	// slotRecv[slotRecvStart[s]:slotRecvStart[s+1]].
	slotStart     []int32
	slotSess      []int32
	slotRecvStart []int32
	slotRecv      []int32
	// slotActive counts the slot's receivers with active membership,
	// maintained incrementally by SetActive.
	slotActive []int32
	// recvSlots CSR: the slots containing rid (one per link on its
	// data-path) — the update set of a membership toggle.
	recvSlotStart []int32
	recvSlots     []int32

	// generic is true when some session carries a custom link-rate
	// function, forcing bisection steps (exactly the batch filler's
	// criterion).
	generic bool

	// Warm-start state.
	warmLevel float64 // valid when warmOK: previous fill's min active rate
	warmOK    bool    // no join since the last fill, and lastMin is defined

	// Fill scratch, reused across epochs.
	slotFill  []int32   // slot's active-and-unfrozen receiver count
	actList   []int32   // rids still rising
	saturated []bool    // per link
	rateBuf   []float64 // EffectiveLinkRate argument buffer
	frozenIDs []int32   // rids frozen this round
}

// NewIncremental indexes the network for epoch-incremental allocation.
// Every receiver starts active; call Fill to compute the initial
// allocation.
func NewIncremental(net *netmodel.Network) (*Incremental, error) {
	inc := &Incremental{net: net}
	ns := net.NumSessions()
	inc.off = make([]int32, ns+1)
	for i := 0; i < ns; i++ {
		inc.off[i+1] = inc.off[i] + int32(net.Session(i).NumReceivers())
	}
	inc.nR = int(inc.off[ns])
	inc.active = make([]bool, inc.nR)
	for r := range inc.active {
		inc.active[r] = true
	}
	inc.rates = make([]float64, inc.nR)
	inc.causes = make([]Cause, inc.nR)
	inc.frozen = make([]bool, inc.nR)

	nl := net.NumLinks()
	inc.slotStart = make([]int32, nl+1)
	for j := 0; j < nl; j++ {
		inc.slotStart[j+1] = inc.slotStart[j] + int32(len(net.OnLink(j)))
	}
	nSlots := int(inc.slotStart[nl])
	inc.slotSess = make([]int32, nSlots)
	inc.slotRecvStart = make([]int32, nSlots+1)
	inc.slotActive = make([]int32, nSlots)
	inc.slotFill = make([]int32, nSlots)
	recvCount := make([]int32, inc.nR)
	total := 0
	for j := 0; j < nl; j++ {
		for si, sr := range net.OnLink(j) {
			s := int(inc.slotStart[j]) + si
			inc.slotSess[s] = int32(sr.Session)
			inc.slotRecvStart[s+1] = inc.slotRecvStart[s] + int32(len(sr.Receivers))
			inc.slotActive[s] = int32(len(sr.Receivers))
			for _, k := range sr.Receivers {
				recvCount[inc.rid(sr.Session, k)]++
			}
			total += len(sr.Receivers)
		}
	}
	inc.slotRecv = make([]int32, total)
	inc.recvSlotStart = make([]int32, inc.nR+1)
	for r := 0; r < inc.nR; r++ {
		inc.recvSlotStart[r+1] = inc.recvSlotStart[r] + recvCount[r]
	}
	inc.recvSlots = make([]int32, total)
	fill := slices.Clone(inc.recvSlotStart[:inc.nR])
	for j := 0; j < nl; j++ {
		for si, sr := range net.OnLink(j) {
			s := int(inc.slotStart[j]) + si
			base := inc.slotRecvStart[s]
			for x, k := range sr.Receivers {
				r := inc.rid(sr.Session, k)
				inc.slotRecv[int(base)+x] = int32(r)
				inc.recvSlots[fill[r]] = int32(s)
				fill[r]++
			}
		}
	}
	for _, s := range net.Sessions() {
		if s.LinkRate != nil {
			inc.generic = true
		}
	}
	inc.saturated = make([]bool, nl)
	inc.actList = make([]int32, 0, inc.nR)
	inc.frozenIDs = make([]int32, 0, inc.nR)
	return inc, nil
}

func (inc *Incremental) rid(i, k int) int { return int(inc.off[i]) + k }

// Active reports receiver r_{i,k}'s current membership.
func (inc *Incremental) Active(i, k int) bool { return inc.active[inc.rid(i, k)] }

// SetActive toggles receiver r_{i,k}'s membership ahead of the next
// Fill. A departing receiver's rate drops to 0 immediately; a joining
// receiver's rate is 0 until Fill runs. O(data-path length).
func (inc *Incremental) SetActive(i, k int, active bool) {
	r := inc.rid(i, k)
	if inc.active[r] == active {
		return
	}
	inc.active[r] = active
	d := int32(-1)
	if active {
		d = 1
		inc.warmOK = false // a join can lower rates: no warm start
	}
	for _, s := range inc.recvSlots[inc.recvSlotStart[r]:inc.recvSlotStart[r+1]] {
		inc.slotActive[s] += d
	}
	inc.rates[r] = 0
	inc.frozen[r] = false
}

// Rate returns r_{i,k}'s rate in the last filled allocation (0 while
// departed).
func (inc *Incremental) Rate(i, k int) float64 { return inc.rates[inc.rid(i, k)] }

// RatesSnapshot copies the current allocation into a fresh per-session
// rate matrix.
func (inc *Incremental) RatesSnapshot() [][]float64 {
	out := make([][]float64, inc.net.NumSessions())
	for i := range out {
		n := inc.net.Session(i).NumReceivers()
		out[i] = make([]float64, n)
		for k := 0; k < n; k++ {
			out[i][k] = inc.rates[inc.rid(i, k)]
		}
	}
	return out
}

// Cause returns why r_{i,k} froze in the last fill; ok is false for
// departed receivers.
func (inc *Incremental) Cause(i, k int) (Cause, bool) {
	r := inc.rid(i, k)
	if !inc.frozen[r] {
		return Cause{}, false
	}
	return inc.causes[r], true
}

// Rounds returns the last fill's filling-iteration count.
func (inc *Incremental) Rounds() int { return inc.rounds }

// Fill recomputes the max-min fair allocation for the current
// membership. Allocation-free after construction.
func (inc *Incremental) Fill() error {
	// Reset fill state: every active receiver rises from the warm-start
	// level, everything else sits at 0.
	level := 0.0
	if inc.warmOK {
		level = inc.warmLevel
	}
	inc.actList = inc.actList[:0]
	copy(inc.slotFill, inc.slotActive)
	for r := 0; r < inc.nR; r++ {
		inc.frozen[r] = false
		if inc.active[r] {
			inc.rates[r] = level
			inc.actList = append(inc.actList, int32(r))
		} else {
			inc.rates[r] = 0
		}
	}
	round := 0
	for len(inc.actList) > 0 {
		t, err := inc.step(level)
		if err != nil {
			return err
		}
		level += t
		for _, r := range inc.actList {
			inc.rates[r] = level
		}
		removed := inc.freeze(level, round)
		if removed == 0 {
			return fmt.Errorf("maxmin: incremental fill stalled at level %v after round %d (invalid link-rate function?)", level, round)
		}
		round++
	}
	inc.rounds = round
	// The next epoch may warm-start here if it only removes receivers.
	inc.warmLevel = math.Inf(1)
	for r := 0; r < inc.nR; r++ {
		if inc.active[r] && inc.rates[r] < inc.warmLevel {
			inc.warmLevel = inc.rates[r]
		}
	}
	inc.warmOK = !math.IsInf(inc.warmLevel, 1)
	return nil
}

// step returns the largest uniform increment for the still-rising
// receivers (the batch filler's step on flat state).
func (inc *Incremental) step(level float64) (float64, error) {
	t := math.Inf(1)
	for _, r := range inc.actList {
		i := inc.sessionOf(int(r))
		if slack := inc.net.Session(i).MaxRate - level; slack < t {
			t = slack
		}
	}
	if t < 0 {
		t = 0
	}
	if !inc.generic {
		return inc.closedFormStep(level, t)
	}
	return inc.bisectStep(level, t)
}

// sessionOf recovers rid's session by binary search over the offsets.
func (inc *Incremental) sessionOf(r int) int {
	lo, hi := 0, len(inc.off)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if int(inc.off[mid]) <= r {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// slotFrozenMax returns the highest settled rate among the slot's
// receivers (frozen receivers keep their freeze level; departed ones
// read 0).
func (inc *Incremental) slotFrozenMax(s int) float64 {
	m := 0.0
	for _, r := range inc.slotRecv[inc.slotRecvStart[s]:inc.slotRecvStart[s+1]] {
		if inc.slotRising(int(r)) {
			continue
		}
		if inc.rates[r] > m {
			m = inc.rates[r]
		}
	}
	return m
}

// slotRising reports whether rid is still rising in the current fill.
func (inc *Incremental) slotRising(r int) bool { return inc.active[r] && !inc.frozen[r] }

func (inc *Incremental) closedFormStep(level, t float64) (float64, error) {
	nl := inc.net.NumLinks()
	for j := 0; j < nl; j++ {
		slope := 0
		base := 0.0
		for s := int(inc.slotStart[j]); s < int(inc.slotStart[j+1]); s++ {
			if inc.slotFill[s] > 0 {
				slope++
				base += level
			} else {
				base += inc.slotFrozenMax(s)
			}
		}
		if slope == 0 {
			continue
		}
		tj := (inc.net.Capacity(j) - base) / float64(slope)
		if tj < 0 {
			tj = 0
		}
		if tj < t {
			t = tj
		}
	}
	if math.IsInf(t, 1) {
		return 0, ErrUnbounded
	}
	return t, nil
}

func (inc *Incremental) bisectStep(level, kappaBound float64) (float64, error) {
	hi := kappaBound
	for j := 0; j < inc.net.NumLinks(); j++ {
		has := false
		for s := int(inc.slotStart[j]); s < int(inc.slotStart[j+1]); s++ {
			if inc.slotFill[s] > 0 {
				has = true
				break
			}
		}
		if has {
			if b := inc.net.Capacity(j) - level; b < hi {
				hi = b
			}
		}
	}
	if math.IsInf(hi, 1) {
		return 0, ErrUnbounded
	}
	if hi <= 0 {
		return 0, nil
	}
	if inc.feasibleAt(level, hi) {
		return hi, nil
	}
	lo := 0.0
	for iter := 0; iter < 200 && hi-lo > 1e-13*(1+hi); iter++ {
		mid := (lo + hi) / 2
		if inc.feasibleAt(level, mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

func (inc *Incremental) feasibleAt(level, t float64) bool {
	for j := 0; j < inc.net.NumLinks(); j++ {
		u := 0.0
		for s := int(inc.slotStart[j]); s < int(inc.slotStart[j+1]); s++ {
			u += inc.slotLinkRateAt(s, level+t)
		}
		if u > inc.net.Capacity(j)+1e-15 {
			return false
		}
	}
	return true
}

// slotLinkRateAt evaluates the slot session's link rate with its rising
// receivers at the given level (the batch filler's sessionLinkRateAt).
func (inc *Incremental) slotLinkRateAt(s int, at float64) float64 {
	inc.rateBuf = inc.rateBuf[:0]
	for _, r := range inc.slotRecv[inc.slotRecvStart[s]:inc.slotRecvStart[s+1]] {
		v := inc.rates[r]
		if inc.slotRising(int(r)) {
			v = at
		}
		inc.rateBuf = append(inc.rateBuf, v)
	}
	return inc.net.Session(int(inc.slotSess[s])).EffectiveLinkRate(inc.rateBuf)
}

// freeze settles receivers that can rise no further (κ, saturated path
// link, single-rate peer cascade), in the batch filler's order.
func (inc *Incremental) freeze(level float64, round int) int {
	net := inc.net
	for j := 0; j < net.NumLinks(); j++ {
		u := 0.0
		for s := int(inc.slotStart[j]); s < int(inc.slotStart[j+1]); s++ {
			u += inc.slotLinkRateAt(s, level)
		}
		inc.saturated[j] = netmodel.Geq(u, net.Capacity(j))
	}
	inc.frozenIDs = inc.frozenIDs[:0]
	for _, r := range inc.actList {
		i := inc.sessionOf(int(r))
		k := int(r) - int(inc.off[i])
		if netmodel.Geq(level, net.Session(i).MaxRate) {
			inc.causes[r] = Cause{Kind: CauseMaxRate, Link: -1, Round: round}
			inc.frozenIDs = append(inc.frozenIDs, r)
			continue
		}
		for _, j := range net.Path(i, k) {
			if inc.saturated[j] {
				inc.causes[r] = Cause{Kind: CauseLink, Link: j, Round: round}
				inc.frozenIDs = append(inc.frozenIDs, r)
				break
			}
		}
	}
	n := len(inc.frozenIDs)
	inc.settle(inc.frozenIDs)
	// Single-rate cascade: a frozen receiver freezes its whole session.
	for _, r := range inc.frozenIDs[:n] {
		i := inc.sessionOf(int(r))
		if net.Session(i).Type != netmodel.SingleRate {
			continue
		}
		link := inc.causes[r].Link
		for k := 0; k < net.Session(i).NumReceivers(); k++ {
			pr := inc.rid(i, k)
			if inc.slotRising(pr) {
				inc.causes[pr] = Cause{Kind: CauseSessionPeer, Link: link, Round: round}
				inc.frozenIDs = append(inc.frozenIDs, int32(pr))
				inc.settle(inc.frozenIDs[len(inc.frozenIDs)-1:])
				n++
			}
		}
	}
	return n
}

// settle marks rids frozen, updates the per-slot rising counts, and
// compacts them out of the rising list.
func (inc *Incremental) settle(rids []int32) {
	for _, r := range rids {
		inc.frozen[r] = true
		for _, s := range inc.recvSlots[inc.recvSlotStart[r]:inc.recvSlotStart[r+1]] {
			inc.slotFill[s]--
		}
	}
	out := inc.actList[:0]
	for _, r := range inc.actList {
		if !inc.frozen[r] {
			out = append(out, r)
		}
	}
	inc.actList = out
}

// MembershipEvent toggles one receiver's membership at a point in
// time — the epoch currency of Timeline (churn joins and leaves, with
// slow-leave linger expiry modeled by shifting the leave time).
type MembershipEvent struct {
	Time     float64
	Session  int
	Receiver int
	Join     bool
}

// TimelineEpoch is the max-min fair allocation in effect from Time
// until the next epoch. Departed receivers carry rate 0.
type TimelineEpoch struct {
	Time   float64
	Rates  [][]float64
	Rounds int
}

// Timeline computes the fair allocation across a membership schedule
// with one epoch-incremental allocator: epoch 0 at time 0 has every
// receiver joined (events at time 0 fold into it), and each later
// distinct event time opens one epoch. Events are applied in time
// order (stable for ties). Redundant events (joining a joined
// receiver) are no-ops, matching the engine's churn semantics.
func Timeline(net *netmodel.Network, events []MembershipEvent) ([]TimelineEpoch, error) {
	for x, ev := range events {
		if ev.Time < 0 || math.IsNaN(ev.Time) {
			return nil, fmt.Errorf("maxmin: timeline event %d at time %v", x, ev.Time)
		}
		if ev.Session < 0 || ev.Session >= net.NumSessions() {
			return nil, fmt.Errorf("maxmin: timeline event %d session %d out of range", x, ev.Session)
		}
		if ev.Receiver < 0 || ev.Receiver >= net.Session(ev.Session).NumReceivers() {
			return nil, fmt.Errorf("maxmin: timeline event %d receiver %d out of range", x, ev.Receiver)
		}
	}
	sorted := slices.Clone(events)
	slices.SortStableFunc(sorted, func(a, b MembershipEvent) int {
		switch {
		case a.Time < b.Time:
			return -1
		case a.Time > b.Time:
			return 1
		}
		return 0
	})
	inc, err := NewIncremental(net)
	if err != nil {
		return nil, err
	}
	var out []TimelineEpoch
	emit := func(at float64) error {
		if err := inc.Fill(); err != nil {
			return fmt.Errorf("maxmin: timeline epoch at t=%v: %w", at, err)
		}
		out = append(out, TimelineEpoch{Time: at, Rates: inc.RatesSnapshot(), Rounds: inc.Rounds()})
		return nil
	}
	x := 0
	for x < len(sorted) && sorted[x].Time == 0 {
		inc.SetActive(sorted[x].Session, sorted[x].Receiver, sorted[x].Join)
		x++
	}
	if err := emit(0); err != nil {
		return nil, err
	}
	for x < len(sorted) {
		at := sorted[x].Time
		for x < len(sorted) && sorted[x].Time == at {
			inc.SetActive(sorted[x].Session, sorted[x].Receiver, sorted[x].Join)
			x++
		}
		if err := emit(at); err != nil {
			return nil, err
		}
	}
	return out, nil
}
