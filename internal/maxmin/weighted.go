package maxmin

import (
	"fmt"
	"sort"

	"mlfair/internal/netmodel"
)

// Weights assigns a positive weight to every receiver, shaped like the
// network's sessions: Weights[i][k] is w_{i,k}.
//
// Weighted max-min fairness is the Section 5 ("future work") extension
// the paper sketches for TCP-fairness: weighting each receiver's rate by
// the inverse of its round-trip time makes the max-min fair allocation
// approximate the bandwidth shares TCP's congestion avoidance converges
// to (Mahdavi/Floyd). Formally, an allocation is weighted max-min fair
// iff the vector of normalized rates a_{i,k}/w_{i,k} is max-min fair in
// the Definition 1 sense, computed by progressive filling of a common
// normalized level.
type Weights [][]float64

// UniformWeights returns all-ones weights for net.
func UniformWeights(net *netmodel.Network) Weights {
	w := make(Weights, net.NumSessions())
	for i, s := range net.Sessions() {
		w[i] = make([]float64, s.NumReceivers())
		for k := range w[i] {
			w[i][k] = 1
		}
	}
	return w
}

// InverseRTTWeights builds weights 1/rtt_{i,k} from per-receiver
// round-trip times, the TCP-fairness choice.
func InverseRTTWeights(rtts [][]float64) Weights {
	w := make(Weights, len(rtts))
	for i, rs := range rtts {
		w[i] = make([]float64, len(rs))
		for k, rtt := range rs {
			if rtt <= 0 {
				panic("maxmin: non-positive RTT")
			}
			w[i][k] = 1 / rtt
		}
	}
	return w
}

func (w Weights) validate(net *netmodel.Network) error {
	if len(w) != net.NumSessions() {
		return fmt.Errorf("maxmin: %d weight groups for %d sessions", len(w), net.NumSessions())
	}
	for i, s := range net.Sessions() {
		if len(w[i]) != s.NumReceivers() {
			return fmt.Errorf("maxmin: session %d: %d weights for %d receivers", i, len(w[i]), s.NumReceivers())
		}
		for k, x := range w[i] {
			if !(x > 0) {
				return fmt.Errorf("maxmin: session %d receiver %d has non-positive weight %v", i, k, x)
			}
			// Single-rate sessions must deliver equal rates, which is
			// incompatible with unequal weights within the session.
			if s.Type == netmodel.SingleRate && !netmodel.Eq(x, w[i][0]) {
				return fmt.Errorf("maxmin: single-rate session %d has unequal weights %v and %v", i, w[i][0], x)
			}
		}
	}
	return nil
}

// AllocateWeighted computes the weighted max-min fair allocation: the
// allocation whose normalized rate vector (a_{i,k}/w_{i,k}) is max-min
// fair. nil weights mean uniform (plain Allocate). The step computation
// always uses bisection, since link rates are no longer uniform in the
// fill level.
func AllocateWeighted(net *netmodel.Network, w Weights) (*Result, error) {
	if w == nil {
		return Allocate(net)
	}
	if err := w.validate(net); err != nil {
		return nil, err
	}
	f := newFiller(net)
	f.weights = w
	return f.run()
}

// NormalizedVector returns the ordered vector of a_{i,k}/w_{i,k}, the
// quantity the weighted allocation equalizes; compare allocations with
// vecorder as for the unweighted case.
func NormalizedVector(a *netmodel.Allocation, w Weights) []float64 {
	out := make([]float64, 0, a.Network().NumReceivers())
	for i := range w {
		for k, x := range w[i] {
			out = append(out, a.Rate(i, k)/x)
		}
	}
	sort.Float64s(out)
	return out
}
