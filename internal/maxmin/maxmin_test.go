package maxmin

import (
	"math"
	"testing"

	"mlfair/internal/netmodel"
)

func mustAllocate(t *testing.T, net *netmodel.Network) *Result {
	t.Helper()
	res, err := Allocate(net)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := res.Alloc.Feasible(); err != nil {
		t.Fatalf("allocation infeasible: %v", err)
	}
	return res
}

func wantRate(t *testing.T, a *netmodel.Allocation, i, k int, want float64) {
	t.Helper()
	if got := a.Rate(i, k); !netmodel.Eq(got, want) {
		t.Errorf("a[%d][%d] = %v, want %v (%s)", i, k, got, want, a)
	}
}

// TestTwoUnicastEqualSplit: the most basic sanity check — two unicast
// sessions on one link split it evenly.
func TestTwoUnicastEqualSplit(t *testing.T) {
	b := netmodel.NewBuilder()
	l := b.AddLink(10)
	s1 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
	s2 := b.AddSession(netmodel.SingleRate, netmodel.NoRateCap, 1)
	b.SetPath(s1, 0, l)
	b.SetPath(s2, 0, l)
	res := mustAllocate(t, b.MustBuild())
	wantRate(t, res.Alloc, 0, 0, 5)
	wantRate(t, res.Alloc, 1, 0, 5)
	if res.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1", res.Rounds)
	}
}

// TestKappaCap: a session capped below its fair share leaves bandwidth to
// the other (unicast max-min behaviour).
func TestKappaCap(t *testing.T) {
	b := netmodel.NewBuilder()
	l := b.AddLink(10)
	s1 := b.AddSession(netmodel.MultiRate, 2, 1) // κ=2
	s2 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
	b.SetPath(s1, 0, l)
	b.SetPath(s2, 0, l)
	res := mustAllocate(t, b.MustBuild())
	wantRate(t, res.Alloc, 0, 0, 2)
	wantRate(t, res.Alloc, 1, 0, 8)
	if c := res.Causes[netmodel.ReceiverID{Session: 0, Receiver: 0}]; c.Kind != CauseMaxRate || c.Link != -1 {
		t.Errorf("cause for capped receiver = %+v", c)
	}
	if c := res.Causes[netmodel.ReceiverID{Session: 1, Receiver: 0}]; c.Kind != CauseLink || c.Link != 0 {
		t.Errorf("cause for link-bound receiver = %+v", c)
	}
}

// figure1 builds the paper's Figure 1 network in abstract (incidence)
// form. Links: l1 (c=5) carries S3's two receivers; l2 (c=7) carries S1
// and S2; l3 (c=4) carries r2,2 and r3,2; l4 (c=3) carries r1,1, r2,1 and
// r3,1. The multi-rate max-min fair allocation is a1=(1), a2=(1,2),
// a3=(1,2), matching the figure.
func figure1() *netmodel.Network {
	b := netmodel.NewBuilder()
	l1 := b.AddLink(5)
	l2 := b.AddLink(7)
	l3 := b.AddLink(4)
	l4 := b.AddLink(3)
	s1 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
	s2 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 2)
	s3 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 2)
	b.SetPath(s1, 0, l2, l4)
	b.SetPath(s2, 0, l2, l4)
	b.SetPath(s2, 1, l2, l3)
	b.SetPath(s3, 0, l1, l4)
	b.SetPath(s3, 1, l1, l3)
	return b.MustBuild()
}

func TestFigure1Rates(t *testing.T) {
	res := mustAllocate(t, figure1())
	a := res.Alloc
	wantRate(t, a, 0, 0, 1)
	wantRate(t, a, 1, 0, 1)
	wantRate(t, a, 1, 1, 2)
	wantRate(t, a, 2, 0, 1)
	wantRate(t, a, 2, 1, 2)

	// Session link rates match the figure's annotations:
	// l1=(0:0:2), l2=(1:2:0), l3=(0:2:2), l4=(1:1:1).
	checks := []struct {
		link, session int
		want          float64
	}{
		{0, 2, 2}, {0, 0, 0}, {0, 1, 0},
		{1, 0, 1}, {1, 1, 2}, {1, 2, 0},
		{2, 1, 2}, {2, 2, 2}, {2, 0, 0},
		{3, 0, 1}, {3, 1, 1}, {3, 2, 1},
	}
	for _, c := range checks {
		if got := a.SessionLinkRate(c.session, c.link); !netmodel.Eq(got, c.want) {
			t.Errorf("u[%d][l%d] = %v, want %v", c.session+1, c.link+1, got, c.want)
		}
	}
	// l3 and l4 fully utilized, l1 and l2 not.
	for j, want := range []bool{false, false, true, true} {
		if got := a.FullyUtilized(j); got != want {
			t.Errorf("FullyUtilized(l%d) = %v, want %v", j+1, got, want)
		}
	}
}

// figure2 builds the paper's Figure 2 network: S1 single-rate with three
// receivers, S2 unicast sharing r1,1's data-path. Links: l1 (c=5) carries
// r1,1 and r2,1; l4 (c=6) also carries both; l2 (c=2) carries r1,2;
// l3 (c=3) carries r1,3.
func figure2(s1Type netmodel.SessionType) *netmodel.Network {
	b := netmodel.NewBuilder()
	l1 := b.AddLink(5)
	l2 := b.AddLink(2)
	l3 := b.AddLink(3)
	l4 := b.AddLink(6)
	s1 := b.AddSession(s1Type, 100, 3)
	s2 := b.AddSession(netmodel.MultiRate, 100, 1)
	b.SetPath(s1, 0, l1, l4)
	b.SetPath(s1, 1, l2)
	b.SetPath(s1, 2, l3)
	b.SetPath(s2, 0, l1, l4)
	return b.MustBuild()
}

// TestFigure2SingleRate reproduces the paper's allocation: S1 receivers
// all at 2 (bound by l2 through the single-rate constraint), r2,1 at 3.
func TestFigure2SingleRate(t *testing.T) {
	res := mustAllocate(t, figure2(netmodel.SingleRate))
	a := res.Alloc
	for k := 0; k < 3; k++ {
		wantRate(t, a, 0, k, 2)
	}
	wantRate(t, a, 1, 0, 3)

	// r1,2 froze on l2; r1,1 and r1,3 followed as single-rate peers.
	if c := res.Causes[netmodel.ReceiverID{Session: 0, Receiver: 1}]; c.Kind != CauseLink || c.Link != 1 {
		t.Errorf("r1,2 cause = %+v", c)
	}
	for _, k := range []int{0, 2} {
		if c := res.Causes[netmodel.ReceiverID{Session: 0, Receiver: k}]; c.Kind != CauseSessionPeer {
			t.Errorf("r1,%d cause = %+v, want single-rate-peer", k+1, c)
		}
	}
}

// TestFigure2MultiRate: replacing S1 with a multi-rate session frees r1,1
// and r1,3 from the l2 bottleneck: a1 = (2.5, 2, 3), a2 = 2.5.
func TestFigure2MultiRate(t *testing.T) {
	res := mustAllocate(t, figure2(netmodel.MultiRate))
	a := res.Alloc
	wantRate(t, a, 0, 0, 2.5)
	wantRate(t, a, 0, 1, 2)
	wantRate(t, a, 0, 2, 3)
	wantRate(t, a, 1, 0, 2.5)
}

// figure4 is the paper's Figure 4: the Figure 2 topology rearranged so
// every S1 receiver crosses the shared first-hop link l4 (c=6), with S1
// multi-rate but exhibiting redundancy 2 on links shared by several of
// its receivers.
func figure4() *netmodel.Network {
	b := netmodel.NewBuilder()
	l4 := b.AddLink(6)
	l1 := b.AddLink(5)
	l2 := b.AddLink(2)
	l3 := b.AddLink(3)
	s1 := b.AddSession(netmodel.MultiRate, 100, 3)
	s2 := b.AddSession(netmodel.MultiRate, 100, 1)
	b.SetLinkRate(s1, netmodel.SharedScaledMax(2))
	b.SetPath(s1, 0, l4, l1)
	b.SetPath(s1, 1, l4, l2)
	b.SetPath(s1, 2, l4, l3)
	b.SetPath(s2, 0, l4, l1)
	return b.MustBuild()
}

// TestFigure4Redundancy reproduces the figure's rates (all receivers at
// 2) and link annotation u = (4:2) on l4.
func TestFigure4Redundancy(t *testing.T) {
	res := mustAllocate(t, figure4())
	a := res.Alloc
	for k := 0; k < 3; k++ {
		wantRate(t, a, 0, k, 2)
	}
	wantRate(t, a, 1, 0, 2)
	if got := a.SessionLinkRate(0, 0); !netmodel.Eq(got, 4) {
		t.Errorf("u_{1,l4} = %v, want 4 (redundancy 2)", got)
	}
	if got := a.SessionLinkRate(1, 0); !netmodel.Eq(got, 2) {
		t.Errorf("u_{2,l4} = %v, want 2", got)
	}
	if !a.FullyUtilized(0) {
		t.Error("l4 should be fully utilized")
	}
}

// TestChainMulticast: one multi-rate session, two receivers at different
// depths; each receiver is limited only by its own path (the layering
// promise from the introduction).
func TestChainMulticast(t *testing.T) {
	b := netmodel.NewBuilder()
	wide := b.AddLink(10)
	narrow := b.AddLink(4)
	s := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 2)
	b.SetPath(s, 0, wide)
	b.SetPath(s, 1, wide, narrow)
	res := mustAllocate(t, b.MustBuild())
	wantRate(t, res.Alloc, 0, 0, 10)
	wantRate(t, res.Alloc, 0, 1, 4)
}

// TestChainSingleRate: the same session typed single-rate drags the fast
// receiver down to the slow one.
func TestChainSingleRate(t *testing.T) {
	b := netmodel.NewBuilder()
	wide := b.AddLink(10)
	narrow := b.AddLink(4)
	s := b.AddSession(netmodel.SingleRate, netmodel.NoRateCap, 2)
	b.SetPath(s, 0, wide)
	b.SetPath(s, 1, wide, narrow)
	res := mustAllocate(t, b.MustBuild())
	wantRate(t, res.Alloc, 0, 0, 4)
	wantRate(t, res.Alloc, 0, 1, 4)
}

func TestZeroCapacityLink(t *testing.T) {
	b := netmodel.NewBuilder()
	dead := b.AddLink(0)
	live := b.AddLink(6)
	s := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 2)
	b.SetPath(s, 0, dead, live)
	b.SetPath(s, 1, live)
	res := mustAllocate(t, b.MustBuild())
	wantRate(t, res.Alloc, 0, 0, 0)
	wantRate(t, res.Alloc, 0, 1, 6)
}

func TestUnbounded(t *testing.T) {
	b := netmodel.NewBuilder()
	l := b.AddLink(math.Inf(1))
	s := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
	b.SetPath(s, 0, l)
	if _, err := Allocate(b.MustBuild()); err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
	if _, err := AllocateGeneric(b.MustBuild()); err != ErrUnbounded {
		t.Fatalf("generic err = %v, want ErrUnbounded", err)
	}
}

func TestInfiniteCapacityFiniteKappa(t *testing.T) {
	b := netmodel.NewBuilder()
	l := b.AddLink(math.Inf(1))
	s := b.AddSession(netmodel.MultiRate, 7, 1)
	b.SetPath(s, 0, l)
	res := mustAllocate(t, b.MustBuild())
	wantRate(t, res.Alloc, 0, 0, 7)
}

// TestGenericMatchesFastPath: the bisection path must agree with the
// closed form on default-v networks.
func TestGenericMatchesFastPath(t *testing.T) {
	for _, net := range []*netmodel.Network{figure1(), figure2(netmodel.SingleRate), figure2(netmodel.MultiRate)} {
		fast := mustAllocate(t, net)
		gen, err := AllocateGeneric(net)
		if err != nil {
			t.Fatalf("AllocateGeneric: %v", err)
		}
		for _, id := range net.ReceiverIDs() {
			f, g := fast.Alloc.RateOf(id), gen.Alloc.RateOf(id)
			if math.Abs(f-g) > 1e-6 {
				t.Errorf("%v: fast=%v generic=%v", id, f, g)
			}
		}
	}
}

// TestScaledRedundancyLowersRates: Lemma 4 in a single concrete case —
// doubling a session's link usage halves everyone's fair share on a
// shared bottleneck.
func TestScaledRedundancyLowersRates(t *testing.T) {
	build := func(fn netmodel.LinkRateFunc) *netmodel.Network {
		b := netmodel.NewBuilder()
		l := b.AddLink(12)
		s1 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 2)
		s2 := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 1)
		b.SetLinkRate(s1, fn)
		b.SetPath(s1, 0, l)
		b.SetPath(s1, 1, l)
		b.SetPath(s2, 0, l)
		return b.MustBuild()
	}
	eff := mustAllocate(t, build(nil))
	red := mustAllocate(t, build(netmodel.ScaledMax(2)))
	// Efficient: u = a1 + a2 = 2a -> a = 6 each.
	wantRate(t, eff.Alloc, 0, 0, 6)
	wantRate(t, eff.Alloc, 1, 0, 6)
	// Redundancy 2: u = 2a1 + a2 = 3a -> a = 4 each.
	wantRate(t, red.Alloc, 0, 0, 4)
	wantRate(t, red.Alloc, 1, 0, 4)
}

func TestCauseKindString(t *testing.T) {
	if CauseLink.String() != "bottleneck-link" ||
		CauseMaxRate.String() != "max-desired-rate" ||
		CauseSessionPeer.String() != "single-rate-peer" {
		t.Fatal("cause strings wrong")
	}
	if CauseKind(7).String() == "" {
		t.Fatal("unknown cause empty")
	}
}

// TestRoundsCount: each filling round freezes at least one receiver, so
// rounds never exceed the receiver count; the chain network needs
// exactly two.
func TestRoundsCount(t *testing.T) {
	b := netmodel.NewBuilder()
	wide := b.AddLink(10)
	narrow := b.AddLink(4)
	s := b.AddSession(netmodel.MultiRate, netmodel.NoRateCap, 2)
	b.SetPath(s, 0, wide)
	b.SetPath(s, 1, wide, narrow)
	res := mustAllocate(t, b.MustBuild())
	if res.Rounds != 2 {
		t.Fatalf("Rounds = %d, want 2", res.Rounds)
	}
}

// TestParallelLinksAllocation: parallel links between the same nodes are
// independent capacity; receivers routed over different parallels do not
// contend.
func TestParallelLinksAllocation(t *testing.T) {
	g := netmodel.NewGraph(2)
	l0 := g.AddLink(0, 1, 3)
	l1 := g.AddLink(0, 1, 7)
	s1 := &netmodel.Session{Sender: 0, Receivers: []int{1}, Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap}
	s2 := &netmodel.Session{Sender: 0, Receivers: []int{1}, Type: netmodel.MultiRate, MaxRate: netmodel.NoRateCap}
	net, err := netmodel.NewNetwork(g, []*netmodel.Session{s1, s2},
		[][][]int{{{l0}}, {{l1}}})
	if err != nil {
		t.Fatal(err)
	}
	res := mustAllocate(t, net)
	wantRate(t, res.Alloc, 0, 0, 3)
	wantRate(t, res.Alloc, 1, 0, 7)
}
