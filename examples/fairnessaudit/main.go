// Fairnessaudit: an operator's view of Lemma 3 and Corollary 1 — audit a
// network where sessions are incrementally "replaced" by multi-rate
// (layered) versions, and watch the max-min fair allocation become more
// max-min fair under the paper's min-unfavorable ordering, while more of
// the four fairness properties hold.
//
// The network comes from the scenario layer's "random" topology
// generator (12 nodes, four sessions, initially all single-rate); each
// step upgrades one session to multi-rate and re-audits with the same
// fairness checkers the scenario Runner's "fairness" stage uses.
//
// Run with: go run ./examples/fairnessaudit
package main

import (
	"fmt"
	"log"

	"mlfair/internal/fairness"
	"mlfair/internal/maxmin"
	"mlfair/internal/netmodel"
	"mlfair/internal/scenario"
	"mlfair/internal/vecorder"
)

func main() {
	spec := &scenario.Spec{
		Topology: scenario.TopologySpec{
			Kind: "random", Nodes: 12, Sessions: 4, MaxReceivers: 4,
			ExtraLinks: 4, SingleRateProb: 1, // start fully single-rate
		},
		Sessions: []scenario.SessionSpec{{Type: "single"}},
		Seed:     2024,
		Metrics:  []string{scenario.MetricMaxMin, scenario.MetricFairness},
	}
	c, err := scenario.Compile(spec)
	if err != nil {
		log.Fatal(err)
	}
	net := c.Benchmark

	var prev []float64
	types := make([]netmodel.SessionType, net.NumSessions())
	for step := 0; step <= net.NumSessions(); step++ {
		for i := range types {
			if i < step {
				types[i] = netmodel.MultiRate
			} else {
				types[i] = netmodel.SingleRate
			}
		}
		n, err := net.WithSessionTypes(types)
		if err != nil {
			log.Fatal(err)
		}
		res, err := maxmin.Allocate(n)
		if err != nil {
			log.Fatal(err)
		}
		vec := res.Alloc.OrderedVector()
		rep := fairness.Check(res.Alloc)

		fmt.Printf("step %d: %d/%d sessions multi-rate\n", step, step, net.NumSessions())
		fmt.Printf("  ordered rates: %s\n", compact(vec))
		fmt.Printf("  %s\n", rep.Summary())
		if prev != nil {
			switch vecorder.Compare(prev, vec) {
			case vecorder.MinUnfavorable:
				x0, _ := vecorder.Threshold(prev, vec)
				fmt.Printf("  strictly more max-min fair than step %d (Lemma 2 threshold x0=%.3g)\n", step-1, x0)
			case vecorder.Equal:
				fmt.Printf("  unchanged from step %d\n", step-1)
			case vecorder.MinFavorable:
				// Lemma 3 guarantees this cannot happen.
				log.Fatalf("Lemma 3 violated: step %d less fair than step %d", step, step-1)
			}
		}
		fmt.Println()
		prev = vec
	}
	fmt.Println("Each replacement of a single-rate session by an identical multi-rate")
	fmt.Println("session weakly improves the allocation (Lemma 3); with all sessions")
	fmt.Println("multi-rate the allocation is the most max-min fair (Corollary 1) and")
	fmt.Println("Theorem 1 guarantees all four properties.")
}

func compact(v []float64) string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.3g", x)
	}
	return s + "]"
}
