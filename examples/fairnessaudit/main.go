// Fairnessaudit: an operator's view of Lemma 3 and Corollary 1 — audit a
// network where sessions are incrementally "replaced" by multi-rate
// (layered) versions, and watch the max-min fair allocation become more
// max-min fair under the paper's min-unfavorable ordering, while more of
// the four fairness properties hold.
//
// The network is a randomly generated 12-node topology with four
// sessions, initially all single-rate. Each step upgrades one session to
// multi-rate and re-audits.
//
// Run with: go run ./examples/fairnessaudit
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"mlfair/internal/core"
	"mlfair/internal/fairness"
	"mlfair/internal/maxmin"
	"mlfair/internal/netmodel"
	"mlfair/internal/topology"
	"mlfair/internal/vecorder"
)

func main() {
	rng := rand.New(rand.NewPCG(2024, 9))
	opts := topology.DefaultRandomOptions()
	opts.SingleRateProb = 1 // start fully single-rate
	net := topology.RandomNetwork(rng, opts)

	var prev []float64
	types := make([]netmodel.SessionType, net.NumSessions())
	for step := 0; step <= net.NumSessions(); step++ {
		for i := range types {
			if i < step {
				types[i] = core.MultiRate
			} else {
				types[i] = core.SingleRate
			}
		}
		n, err := net.WithSessionTypes(types)
		if err != nil {
			log.Fatal(err)
		}
		res, err := maxmin.Allocate(n)
		if err != nil {
			log.Fatal(err)
		}
		vec := res.Alloc.OrderedVector()
		rep := fairness.Check(res.Alloc)

		fmt.Printf("step %d: %d/%d sessions multi-rate\n", step, step, net.NumSessions())
		fmt.Printf("  ordered rates: %s\n", compact(vec))
		fmt.Printf("  %s\n", rep.Summary())
		if prev != nil {
			switch vecorder.Compare(prev, vec) {
			case vecorder.MinUnfavorable:
				x0, _ := vecorder.Threshold(prev, vec)
				fmt.Printf("  strictly more max-min fair than step %d (Lemma 2 threshold x0=%.3g)\n", step-1, x0)
			case vecorder.Equal:
				fmt.Printf("  unchanged from step %d\n", step-1)
			case vecorder.MinFavorable:
				// Lemma 3 guarantees this cannot happen.
				log.Fatalf("Lemma 3 violated: step %d less fair than step %d", step, step-1)
			}
		}
		fmt.Println()
		prev = vec
	}
	fmt.Println("Each replacement of a single-rate session by an identical multi-rate")
	fmt.Println("session weakly improves the allocation (Lemma 3); with all sessions")
	fmt.Println("multi-rate the allocation is the most max-min fair (Corollary 1) and")
	fmt.Println("Theorem 1 guarantees all four properties.")
}

func compact(v []float64) string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.3g", x)
	}
	return s + "]"
}
