// Filetransfer: layered *reliable* bulk data distribution — the
// digital-fountain / RLC use case the paper cites (Byers et al.,
// Vicisano et al.). With a rateless encoding, any sufficiently large set
// of distinct packets reconstructs the file, so each receiver finishes
// after collecting fileSize packets at whatever rate its own path
// sustains.
//
// The distribution network is a scenario.Spec: the paper's modified
// star with a third of the receivers on clean paths, a third average,
// a third lossy (per-link overrides on the fanout links). For each
// protocol the example reports
//
//   - each receiver's completion time (fileSize / achieved rate),
//   - the total bandwidth consumed on the shared link, and
//   - the redundancy — bandwidth beyond what the fastest receiver needed,
//     which is exactly the waste the paper's Definition 3 measures.
//
// Coordinated joins deliver the same completion times for a fraction of
// the shared-link bandwidth.
//
// Run with: go run ./examples/filetransfer
package main

import (
	"fmt"
	"log"
	"sort"

	"mlfair/internal/protocol"
	"mlfair/internal/scenario"
)

const (
	fileSizePackets = 50000
	receivers       = 30
)

func spec(kind protocol.Kind) *scenario.Spec {
	s := &scenario.Spec{
		Topology:    scenario.TopologySpec{Kind: "star", Receivers: receivers},
		Sessions:    []scenario.SessionSpec{{Protocol: kind.String(), Layers: 8}},
		DefaultLink: &scenario.LinkSpec{Kind: "bernoulli", Loss: 0.02}, // the average class
		Links: []scenario.LinkOverride{
			{Link: 0, LinkSpec: scenario.LinkSpec{Kind: "bernoulli", Loss: 0.001}},
		},
		Packets:      400000,
		Seed:         77,
		Replications: scenario.ReplicationSpec{N: 1},
		Metrics:      []string{scenario.MetricRates, scenario.MetricRedundancy},
	}
	// A third of the receivers on clean paths, a third lossy (fanout
	// link k+1 belongs to receiver k).
	for i := 0; i < receivers; i++ {
		switch i % 3 {
		case 0:
			s.Links = append(s.Links, scenario.LinkOverride{
				Link: 1 + i, LinkSpec: scenario.LinkSpec{Kind: "bernoulli", Loss: 0.005}})
		case 2:
			s.Links = append(s.Links, scenario.LinkOverride{
				Link: 1 + i, LinkSpec: scenario.LinkSpec{Kind: "bernoulli", Loss: 0.06}})
		}
	}
	return s
}

func main() {
	fmt.Printf("Distributing a %d-packet file to %d receivers (8 layers, shared loss 0.001)\n\n",
		fileSizePackets, receivers)
	for _, kind := range protocol.Kinds() {
		res, err := scenario.Run(spec(kind))
		if err != nil {
			log.Fatal(err)
		}
		times := make([]float64, 0, receivers)
		best := 0.0
		for _, s := range res.Rates[0] {
			if s.Mean > best {
				best = s.Mean
			}
			if s.Mean > 0 {
				times = append(times, fileSizePackets/s.Mean)
			}
		}
		sort.Float64s(times)
		redundancy := res.RootRedundancy.Mean
		linkRate := redundancy * best // Definition 3 inverted: usage = v * best rate
		sharedBytes := linkRate * times[len(times)-1]
		fmt.Printf("%-14s first done %8.0f  median %8.0f  last %8.0f  (time units)\n",
			kind, times[0], times[len(times)/2], times[len(times)-1])
		fmt.Printf("%14s shared-link redundancy %.2f -> %.2gM packet-units on the bottleneck\n",
			"", redundancy, sharedBytes/1e6)
	}
	fmt.Println()
	fmt.Println("All protocols finish in similar time (completion is set by each")
	fmt.Println("receiver's own loss rate), but uncoordinated joins burn the shared")
	fmt.Println("link's bandwidth — the paper's argument for sender coordination.")
}
