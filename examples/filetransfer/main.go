// Filetransfer: layered *reliable* bulk data distribution — the
// digital-fountain / RLC use case the paper cites (Byers et al.,
// Vicisano et al.). With a rateless encoding, any sufficiently large set
// of distinct packets reconstructs the file, so each receiver finishes
// after collecting fileSize packets at whatever rate its own path
// sustains.
//
// The example distributes one "file" to a mixed audience and reports,
// per protocol:
//
//   - each receiver's completion time (fileSize / achieved rate),
//   - the total bandwidth consumed on the shared link, and
//   - the redundancy — bandwidth beyond what the fastest receiver needed,
//     which is exactly the waste the paper's Definition 3 measures.
//
// Coordinated joins deliver the same completion times for a fraction of
// the shared-link bandwidth.
//
// Run with: go run ./examples/filetransfer
package main

import (
	"fmt"
	"log"
	"sort"

	"mlfair/internal/core"
	"mlfair/internal/protocol"
)

const (
	fileSizePackets = 50000
	receivers       = 30
)

func main() {
	// A third of the receivers on clean paths, a third average, a third
	// lossy.
	losses := make([]float64, receivers)
	for i := range losses {
		switch i % 3 {
		case 0:
			losses[i] = 0.005
		case 1:
			losses[i] = 0.02
		case 2:
			losses[i] = 0.06
		}
	}

	fmt.Printf("Distributing a %d-packet file to %d receivers (8 layers, shared loss 0.001)\n\n",
		fileSizePackets, receivers)
	for _, kind := range protocol.Kinds() {
		res, err := core.Simulate(core.SimConfig{
			Layers: 8, Receivers: receivers, SharedLoss: 0.001,
			IndependentLosses: losses, Protocol: kind,
			Packets: 400000, Seed: 77,
		})
		if err != nil {
			log.Fatal(err)
		}
		times := make([]float64, len(res.ReceiverRates))
		for i, r := range res.ReceiverRates {
			if r > 0 {
				times[i] = fileSizePackets / r
			}
		}
		sort.Float64s(times)
		sharedBytes := res.LinkRate * times[len(times)-1] // usage until the last finisher
		fmt.Printf("%-14s first done %8.0f  median %8.0f  last %8.0f  (time units)\n",
			kind, times[0], times[len(times)/2], times[len(times)-1])
		fmt.Printf("%14s shared-link redundancy %.2f -> %.2gM packet-units on the bottleneck\n",
			"", res.Redundancy, sharedBytes/1e6)
	}
	fmt.Println()
	fmt.Println("All protocols finish in similar time (completion is set by each")
	fmt.Println("receiver's own loss rate), but uncoordinated joins burn the shared")
	fmt.Println("link's bandwidth — the paper's argument for sender coordination.")
}
