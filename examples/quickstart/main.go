// Quickstart: build the paper's Figure 2 network with the core API,
// compute its max-min fair allocation both ways Γ can type session S1,
// and audit the four fairness properties — reproducing the Section 2.3
// observation that layering (multi-rate sessions) repairs three of them.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mlfair/internal/core"
)

func main() {
	// Links: l0 and l3 form the shared path to receivers r1,1 and r2,1;
	// l1 (capacity 2) and l2 (capacity 3) are private tails for r1,2 and
	// r1,3.
	build := func(single bool) *core.Network {
		nb := core.NewNetworkBuilder().Links(5, 2, 3, 6)
		paths := [][]int{core.Path(0, 3), core.Path(1), core.Path(2)}
		if single {
			nb.SingleRateSession(100, paths...)
		} else {
			nb.MultiRateSession(100, paths...)
		}
		return nb.
			MultiRateSession(100, core.Path(0, 3)). // unicast S2 sharing r1,1's path
			MustBuild()
	}

	for _, single := range []bool{true, false} {
		kind := "multi-rate"
		if single {
			kind = "single-rate"
		}
		net := build(single)
		res, err := core.MaxMinFair(net)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("S1 %s:\n", kind)
		fmt.Printf("  allocation: %s\n", res.Alloc)
		for _, id := range net.ReceiverIDs() {
			cause := res.Causes[id]
			fmt.Printf("  %s = %.3g (%s)\n", id, res.Alloc.RateOf(id), cause.Kind)
		}
		rep := core.CheckFairness(res.Alloc)
		fmt.Printf("  %s\n\n", rep.Summary())
	}
	fmt.Println("Layering lets each receiver run at its own bottleneck without")
	fmt.Println("dragging down session peers — and the max-min fair allocation")
	fmt.Println("then satisfies all four fairness properties (Theorem 1).")
}
