// Quickstart: declare the paper's Figure 2 network as a scenario.Spec,
// run the analytic pipeline both ways Γ can type session S1, and audit
// the four fairness properties — reproducing the Section 2.3
// observation that layering (multi-rate sessions) repairs three of
// them. The same Spec, saved as JSON, runs from any binary's -spec
// flag (see docs/SCENARIOS.md).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"mlfair/internal/scenario"
)

func main() {
	// Links: l0 and l3 form the shared path to receivers r1,1 and r2,1;
	// l1 (capacity 2) and l2 (capacity 3) are private tails for r1,2 and
	// r1,3. S2 is a unicast peer sharing r1,1's path.
	build := func(s1Type string) *scenario.Spec {
		return &scenario.Spec{
			Name: fmt.Sprintf("Figure 2 with S1 %s-rate", s1Type),
			Topology: scenario.TopologySpec{
				Kind:           "paths",
				LinkCapacities: []float64{5, 2, 3, 6},
			},
			Sessions: []scenario.SessionSpec{
				{Type: s1Type, MaxRate: 100, Paths: [][]int{{0, 3}, {1}, {2}}},
				{Type: "multi", MaxRate: 100, Paths: [][]int{{0, 3}}},
			},
			Metrics: []string{scenario.MetricMaxMin, scenario.MetricFairness},
		}
	}

	for _, s1Type := range []string{"single", "multi"} {
		res, err := scenario.Run(build(s1Type))
		if err != nil {
			log.Fatal(err)
		}
		if err := res.WriteReport(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	fmt.Println("Layering lets each receiver run at its own bottleneck without")
	fmt.Println("dragging down session peers — and the max-min fair allocation")
	fmt.Println("then satisfies all four fairness properties (Theorem 1).")
}
