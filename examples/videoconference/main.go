// Videoconference: the motivating scenario for receiver-driven layered
// multicast (McCanne et al.) — one live video source, a heterogeneous
// audience (modem, ISDN, DSL, LAN receivers), and a layered encoding.
//
// The example does three things, all through the scenario layer:
//
//  1. Computes the multi-rate max-min fair rate for every receiver on a
//     heterogeneous capacity star (the "maxmin" stage) and maps it to a
//     layer subscription (the operating point a perfect RLM would find).
//  2. Contrasts it with the single-rate alternative, where the slowest
//     modem receiver caps the whole session.
//  3. Simulates the protocols with per-receiver loss rates shaped like
//     the same audience, comparing sender-coordinated against
//     uncoordinated joins on shared-link redundancy (Section 4).
//
// Run with: go run ./examples/videoconference
package main

import (
	"fmt"
	"log"

	"mlfair/internal/layering"
	"mlfair/internal/protocol"
	"mlfair/internal/scenario"
)

// audience describes the access-link capacity of each receiver class,
// in layer-1 units (a layer-1 stream is "audio only").
var audience = []struct {
	name     string
	capacity float64
	loss     float64
	count    int
}{
	{"modem", 1, 0.08, 3},
	{"isdn", 4, 0.04, 3},
	{"dsl", 16, 0.01, 2},
	{"lan", 128, 0.001, 2},
}

// fairSpec is the capacity-domain audience star: backbone provisioned
// for the fastest class, one fanout link per receiver.
func fairSpec(sessionType string) *scenario.Spec {
	var fan []float64
	for _, class := range audience {
		for i := 0; i < class.count; i++ {
			fan = append(fan, class.capacity)
		}
	}
	return &scenario.Spec{
		Topology: scenario.TopologySpec{
			Kind: "star", SharedCapacity: 128, FanoutCapacities: fan,
		},
		Sessions: []scenario.SessionSpec{{Type: sessionType}},
		Metrics:  []string{scenario.MetricMaxMin},
	}
}

func fairShare() {
	rates := map[string][]float64{}
	for _, t := range []string{"multi", "single"} {
		res, err := scenario.Run(fairSpec(t))
		if err != nil {
			log.Fatal(err)
		}
		rates[t] = res.FairRates[0]
	}
	scheme := layering.Exponential(8)
	fmt.Println("Max-min fair rates and layer subscriptions (8 exponential layers):")
	fmt.Printf("%8s  %12s  %14s  %12s\n", "class", "multi-rate", "layers joined", "single-rate")
	k := 0
	for _, class := range audience {
		m := rates["multi"][k]
		s := rates["single"][k]
		fmt.Printf("%8s  %12.3g  %14d  %12.3g\n", class.name, m, scheme.LevelFor(m), s)
		k += class.count
	}
	fmt.Println()
	fmt.Println("Single-rate delivery drags every receiver to the modem rate;")
	fmt.Println("the multi-rate allocation gives each class its own bottleneck.")
	fmt.Println()
}

// protocolSpec is the loss-domain version of the same audience on the
// Figure 7(b) star: better access links lose less.
func protocolSpec(kind protocol.Kind) *scenario.Spec {
	s := &scenario.Spec{
		Topology: scenario.TopologySpec{Kind: "star"},
		Sessions: []scenario.SessionSpec{{Protocol: kind.String(), Layers: 8}},
		Links: []scenario.LinkOverride{
			{Link: 0, LinkSpec: scenario.LinkSpec{Kind: "bernoulli", Loss: 0.001}},
		},
		Packets:      200000,
		Seed:         2026,
		Replications: scenario.ReplicationSpec{N: 1},
		Metrics:      []string{scenario.MetricRates, scenario.MetricRedundancy},
	}
	k := 0
	for _, class := range audience {
		for i := 0; i < class.count; i++ {
			s.Links = append(s.Links, scenario.LinkOverride{
				Link: 1 + k, LinkSpec: scenario.LinkSpec{Kind: "bernoulli", Loss: class.loss}})
			k++
		}
	}
	s.Topology.Receivers = k
	return s
}

func protocolRun() {
	fmt.Println("Protocol simulation (8 layers, shared loss 0.001, heterogeneous fanout loss):")
	for _, kind := range []protocol.Kind{protocol.Coordinated, protocol.Uncoordinated} {
		res, err := scenario.Run(protocolSpec(kind))
		if err != nil {
			log.Fatal(err)
		}
		best := 0.0
		for _, s := range res.Rates[0] {
			if s.Mean > best {
				best = s.Mean
			}
		}
		red := res.RootRedundancy.Mean
		fmt.Printf("  %-14s redundancy %.2f, shared-link rate %.1f pkt/u, fastest receiver %.1f pkt/u\n",
			kind, red, red*best, best)
	}
	fmt.Println()
	fmt.Println("Sender-coordinated joins keep redundant bandwidth on the shared")
	fmt.Println("backbone low even with a heterogeneous audience (Section 4).")
}

func main() {
	fairShare()
	protocolRun()
}
