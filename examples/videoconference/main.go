// Videoconference: the motivating scenario for receiver-driven layered
// multicast (McCanne et al.) — one live video source, a heterogeneous
// audience (modem, ISDN, DSL, LAN receivers), and a layered encoding.
//
// The example does three things:
//
//  1. Computes the multi-rate max-min fair rate for every receiver on a
//     heterogeneous distribution tree and maps it to a layer
//     subscription (the operating point a perfect RLM would find).
//  2. Contrasts it with the single-rate alternative, where the slowest
//     modem receiver caps the whole session.
//  3. Runs the packet-level protocol simulator with per-receiver loss
//     rates shaped like the same audience, comparing the sender-
//     coordinated protocol against uncoordinated joins on shared-link
//     redundancy (the Section 4 result).
//
// Run with: go run ./examples/videoconference
package main

import (
	"fmt"
	"log"

	"mlfair/internal/core"
	"mlfair/internal/layering"
	"mlfair/internal/netmodel"
	"mlfair/internal/protocol"
	"mlfair/internal/routing"
)

func main() {
	fairShare()
	protocolRun()
}

// audience describes the access-link capacity of each receiver class,
// in layer-1 units (a layer-1 stream is "audio only").
var audience = []struct {
	name     string
	capacity float64
	count    int
}{
	{"modem", 1, 3},
	{"isdn", 4, 3},
	{"dsl", 16, 2},
	{"lan", 128, 2},
}

func fairShare() {
	// Distribution tree: source -> backbone link -> per-class subtrees.
	// The backbone is provisioned for the fastest class.
	nodes := 2 // source, backbone hub
	for _, c := range audience {
		nodes += c.count
	}
	g := netmodel.NewGraph(nodes)
	g.AddLink(0, 1, 128) // backbone
	receivers := []int{}
	node := 2
	for _, class := range audience {
		for i := 0; i < class.count; i++ {
			g.AddLink(1, node, class.capacity)
			receivers = append(receivers, node)
			node++
		}
	}

	session := func(t core.SessionType) *core.Network {
		s := &netmodel.Session{Sender: 0, Receivers: receivers, Type: t, MaxRate: netmodel.NoRateCap}
		net, err := routing.BuildNetwork(g, []*netmodel.Session{s})
		if err != nil {
			log.Fatal(err)
		}
		return net
	}

	multi, err := core.MaxMinFair(session(core.MultiRate))
	if err != nil {
		log.Fatal(err)
	}
	single, err := core.MaxMinFair(session(core.SingleRate))
	if err != nil {
		log.Fatal(err)
	}

	scheme := layering.Exponential(8)
	fmt.Println("Max-min fair rates and layer subscriptions (8 exponential layers):")
	fmt.Printf("%8s  %12s  %14s  %12s\n", "class", "multi-rate", "layers joined", "single-rate")
	k := 0
	for _, class := range audience {
		for i := 0; i < class.count; i++ {
			m := multi.Alloc.Rate(0, k)
			s := single.Alloc.Rate(0, k)
			if i == 0 {
				fmt.Printf("%8s  %12.3g  %14d  %12.3g\n", class.name, m, scheme.LevelFor(m), s)
			}
			k++
		}
	}
	fmt.Println()
	fmt.Println("Single-rate delivery drags every receiver to the modem rate;")
	fmt.Println("the multi-rate allocation gives each class its own bottleneck.")
	fmt.Println()
}

func protocolRun() {
	// Loss-domain version of the same audience on the Figure 7(b) star:
	// better access links lose less.
	var losses []float64
	lossByClass := map[string]float64{"modem": 0.08, "isdn": 0.04, "dsl": 0.01, "lan": 0.001}
	for _, class := range audience {
		for i := 0; i < class.count; i++ {
			losses = append(losses, lossByClass[class.name])
		}
	}
	fmt.Println("Protocol simulation (8 layers, shared loss 0.001, heterogeneous fanout loss):")
	for _, kind := range []protocol.Kind{core.Coordinated, core.Uncoordinated} {
		cfg := core.SimConfig{
			Layers: 8, Receivers: len(losses), SharedLoss: 0.001,
			IndependentLosses: losses, Protocol: kind, Packets: 200000, Seed: 2026,
		}
		res, err := core.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s redundancy %.2f, shared-link rate %.1f pkt/u, fastest receiver %.1f pkt/u\n",
			cfg.Protocol, res.Redundancy, res.LinkRate, maxOf(res.ReceiverRates))
	}
	fmt.Println()
	fmt.Println("Sender-coordinated joins keep redundant bandwidth on the shared")
	fmt.Println("backbone low even with a heterogeneous audience (Section 4).")
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
