// Sessionchurn: watch max-min fair rates evolve as sessions come and go
// — the paper's Section 5 concern that "a session's fair allocation may
// vary due to startup and/or termination of other sessions", plus the
// Section 2.5 surprise that even *removing* a receiver can lower another
// receiver's rate.
//
// The Figure 3(a) network is declared as a scenario.Spec (the same
// abstract form -spec files use); the compiled network then feeds the
// dynamics package's timeline replay: sessions arrive one by one, then
// receiver r3,2 leaves. The removal frees capacity, yet receiver
// r3,1's fair rate drops from 8 to 6 while r1,1's rises from 3 to 5.
//
// Run with: go run ./examples/sessionchurn
package main

import (
	"fmt"
	"log"
	"os"

	"mlfair/internal/dynamics"
	"mlfair/internal/scenario"
)

func main() {
	// Figure 3(a) in declarative form: lA(4):{r2,1 r3,2},
	// lB(10):{r2,1 r3,1}, lD(5):{r1,1 r3,2}.
	spec := &scenario.Spec{
		Name: "Figure 3(a): receiver removal hurts a surviving peer",
		Topology: scenario.TopologySpec{
			Kind:           "paths",
			LinkCapacities: []float64{4, 10, 5},
		},
		Sessions: []scenario.SessionSpec{
			{Paths: [][]int{{2}}},
			{Paths: [][]int{{0, 1}}},
			{Paths: [][]int{{1}, {0, 2}}},
		},
		Metrics: []string{scenario.MetricMaxMin, scenario.MetricFairness},
	}
	res, err := scenario.Run(spec)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteReport(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	tl := &dynamics.Timeline{
		Population: res.Compiled.Net,
		Events: []dynamics.Event{
			{Kind: dynamics.SessionArrival, Session: 0},
			{Kind: dynamics.SessionArrival, Session: 1},
			{Kind: dynamics.SessionArrival, Session: 2},
			{Kind: dynamics.ReceiverRemoval, Session: 2, Receiver: 1},
			{Kind: dynamics.SessionDeparture, Session: 1},
		},
	}
	reps, err := dynamics.Replay(tl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Replaying the network as a membership timeline:")
	fmt.Printf("%-28s %8s %8s %8s %8s %10s\n",
		"event", "active", "min", "total", "win/lose", "max swing")
	for _, r := range reps {
		ev := fmt.Sprintf("%s S%d", r.Event.Kind, r.Event.Session+1)
		if r.Event.Kind == dynamics.ReceiverRemoval {
			ev = fmt.Sprintf("remove r%d,%d", r.Event.Session+1, r.Event.Receiver+1)
		}
		fmt.Printf("%-28s %8d %8.3g %8.3g %5d/%-3d %10.3g\n",
			ev, r.ActiveSessions, r.MinRate, r.TotalRate, r.Winners, r.Losers, r.MaxSwing)
	}
	fmt.Println()
	fmt.Println("Removing r3,2 freed capacity on its links — yet r3,1 LOST rate")
	fmt.Println("(8 -> 6) while r1,1 gained (3 -> 5): max-min fairness reacts to")
	fmt.Println("membership changes in non-obvious directions (paper §2.5).")
}
