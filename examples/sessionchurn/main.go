// Sessionchurn: watch max-min fair rates evolve as sessions come and go
// — the paper's Section 5 concern that "a session's fair allocation may
// vary due to startup and/or termination of other sessions", plus the
// Section 2.5 surprise that even *removing* a receiver can lower another
// receiver's rate.
//
// The example replays the Figure 3(a) network as a timeline: sessions
// arrive one by one, then receiver r3,2 leaves. The removal frees
// capacity, yet receiver r3,1's fair rate drops from 8 to 6 while
// r1,1's rises from 3 to 5.
//
// Run with: go run ./examples/sessionchurn
package main

import (
	"fmt"
	"log"

	"mlfair/internal/dynamics"
	"mlfair/internal/topology"
)

func main() {
	tl := &dynamics.Timeline{
		Population: topology.Figure3a().Network,
		Events: []dynamics.Event{
			{Kind: dynamics.SessionArrival, Session: 0},
			{Kind: dynamics.SessionArrival, Session: 1},
			{Kind: dynamics.SessionArrival, Session: 2},
			{Kind: dynamics.ReceiverRemoval, Session: 2, Receiver: 1},
			{Kind: dynamics.SessionDeparture, Session: 1},
		},
	}
	reps, err := dynamics.Replay(tl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Replaying the Figure 3(a) network:")
	fmt.Printf("%-28s %8s %8s %8s %8s %10s\n",
		"event", "active", "min", "total", "win/lose", "max swing")
	for _, r := range reps {
		ev := fmt.Sprintf("%s S%d", r.Event.Kind, r.Event.Session+1)
		if r.Event.Kind == dynamics.ReceiverRemoval {
			ev = fmt.Sprintf("remove r%d,%d", r.Event.Session+1, r.Event.Receiver+1)
		}
		fmt.Printf("%-28s %8d %8.3g %8.3g %5d/%-3d %10.3g\n",
			ev, r.ActiveSessions, r.MinRate, r.TotalRate, r.Winners, r.Losers, r.MaxSwing)
	}
	fmt.Println()
	fmt.Println("Removing r3,2 freed capacity on its links — yet r3,1 LOST rate")
	fmt.Println("(8 -> 6) while r1,1 gained (3 -> 5): max-min fairness reacts to")
	fmt.Println("membership changes in non-obvious directions (paper §2.5).")
}
