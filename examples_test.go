package mlfair

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example binary end to end, asserting a
// key line of its expected output — so the documented entry points can
// never silently rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples in -short mode")
	}
	cases := map[string]string{
		"./examples/quickstart":      "Theorem 1",
		"./examples/videoconference": "Sender-coordinated joins",
		"./examples/filetransfer":    "shared-link redundancy",
		"./examples/fairnessaudit":   "Corollary 1",
		"./examples/sessionchurn":    "non-obvious directions",
	}
	for dir, want := range cases {
		dir, want := dir, want
		t.Run(strings.TrimPrefix(dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", dir).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", dir, err, out)
			}
			if !strings.Contains(string(out), want) {
				t.Fatalf("%s output missing %q:\n%s", dir, want, out)
			}
		})
	}
}
