package main

import (
	"strings"
	"testing"

	"mlfair/internal/protocol"
)

func TestParseKinds(t *testing.T) {
	all, err := parseKinds("all")
	if err != nil || len(all) != 3 {
		t.Fatalf("all -> %v, %v", all, err)
	}
	one, err := parseKinds("coordinated")
	if err != nil || len(one) != 1 || one[0] != protocol.Coordinated {
		t.Fatalf("coordinated -> %v, %v", one, err)
	}
	if _, err := parseKinds("bogus"); err == nil {
		t.Fatal("bogus protocol accepted")
	}
}

func TestParseDrop(t *testing.T) {
	if d, err := parseDrop("priority"); err != nil || d.String() != "priority" {
		t.Fatalf("parseDrop priority -> %v %v", d, err)
	}
	if d, err := parseDrop(""); err != nil || d.String() != "uniform" {
		t.Fatalf("parseDrop empty -> %v %v", d, err)
	}
	if _, err := parseDrop("zig"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestRunTable(t *testing.T) {
	var b strings.Builder
	if err := run(&b, options{proto: "uncoordinated", receivers: 10, layers: 6,
		shared: 0.001, ind: 0.03, packets: 5000, trials: 3, seed: 1, drop: "uniform"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Shared-link redundancy", "Uncoordinated", "mean level"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunBadProtocol(t *testing.T) {
	var b strings.Builder
	if err := run(&b, options{proto: "nope", receivers: 10, layers: 6,
		shared: 0.001, ind: 0.03, packets: 5000, trials: 3, seed: 1}); err == nil {
		t.Fatal("bad protocol accepted")
	}
	if err := run(&b, options{proto: "all", receivers: 2, layers: 3,
		shared: 0.001, ind: 0.03, packets: 500, trials: 1, seed: 1, drop: "zigzag"}); err == nil {
		t.Fatal("bad drop policy accepted")
	}
}
