// Command protosim runs the layered multicast congestion-control
// simulator on the paper's modified-star topology (Figure 7b) and
// reports the session's shared-link redundancy.
//
// Usage:
//
//	protosim -protocol coordinated -receivers 100 -shared 0.0001 -ind 0.04
//	protosim -protocol all -trials 30 -packets 100000   # paper fidelity
//	protosim -spec scenario.json                        # declarative spec run
//	protosim -sweep sweep.json                          # declarative sweep run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mlfair/internal/cliutil"
	"mlfair/internal/protocol"
	"mlfair/internal/sim"
	"mlfair/internal/stats"
	"mlfair/internal/trace"
)

func main() {
	var (
		proto   = flag.String("protocol", "all", "coordinated | uncoordinated | deterministic | all")
		layers  = flag.Int("layers", 8, "number of layers")
		shared  = flag.Float64("shared", 0.0001, "shared-link Bernoulli loss rate")
		ind     = flag.Float64("ind", 0.04, "independent (fanout) loss rate")
		latency = flag.Float64("leave-latency", 0, "leave-processing latency in time units (Section 5 extension)")
		drop    = flag.String("drop", "uniform", "drop policy: uniform | priority (Section 5 extension)")
	)
	f := cliutil.RegisterSim(flag.CommandLine, cliutil.SimDefaults{
		Receivers: 100, Packets: 100000, Trials: 30, Seed: 1999,
	})
	ob := cliutil.RegisterObservability(flag.CommandLine, "protosim")
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "protosim:", err)
		os.Exit(1)
	}
	if err := ob.Start(); err != nil {
		fail(err)
	}
	ran, err := f.RunObserved(os.Stdout, ob)
	if !ran {
		ob.Manifest().SetSeed(f.Seed)
		err = run(os.Stdout, options{
			proto: *proto, receivers: f.Receivers, layers: *layers,
			shared: *shared, ind: *ind, packets: f.Packets, trials: f.Trials,
			seed: f.Seed, latency: *latency, drop: *drop,
		})
	}
	if serr := ob.Stop(); err == nil {
		err = serr
	}
	if err != nil {
		fail(err)
	}
}

func parseKinds(s string) ([]protocol.Kind, error) {
	switch s {
	case "coordinated":
		return []protocol.Kind{protocol.Coordinated}, nil
	case "uncoordinated":
		return []protocol.Kind{protocol.Uncoordinated}, nil
	case "deterministic":
		return []protocol.Kind{protocol.Deterministic}, nil
	case "all":
		return protocol.Kinds(), nil
	}
	return nil, fmt.Errorf("unknown protocol %q", s)
}

// options carries protosim's run parameters.
type options struct {
	proto           string
	receivers       int
	layers          int
	shared, ind     float64
	packets, trials int
	seed            uint64
	latency         float64
	drop            string
}

func parseDrop(s string) (sim.DropPolicy, error) {
	switch s {
	case "uniform", "":
		return sim.UniformDrop, nil
	case "priority":
		return sim.PriorityDrop, nil
	}
	return 0, fmt.Errorf("unknown drop policy %q", s)
}

func run(w io.Writer, o options) error {
	kinds, err := parseKinds(o.proto)
	if err != nil {
		return err
	}
	dropPolicy, err := parseDrop(o.drop)
	if err != nil {
		return err
	}
	receivers, layers, shared, ind := o.receivers, o.layers, o.shared, o.ind
	packets, trials, seed := o.packets, o.trials, o.seed
	t := trace.NewTable(
		fmt.Sprintf("Shared-link redundancy: %d receivers, %d layers, shared loss %g, independent loss %g, latency %g, %s drop",
			receivers, layers, shared, ind, o.latency, dropPolicy),
		"protocol", "redundancy", "ci95", "mean level", "link rate")
	for _, k := range kinds {
		cfg := sim.Config{
			Layers: layers, Receivers: receivers,
			SharedLoss: shared, IndependentLoss: ind,
			Protocol: k, Packets: packets, Seed: seed,
			LeaveLatency: o.latency, Drop: dropPolicy,
		}
		reds, err := sim.RunReplicated(cfg, trials)
		if err != nil {
			return err
		}
		s := stats.Summarize(reds)
		// One extra run for the diagnostics columns.
		r, err := sim.Run(cfg)
		if err != nil {
			return err
		}
		t.AddRow(k.String(), trace.Float(s.Mean), trace.Float(s.CI95),
			trace.Float(r.MeanLevel), trace.Float(r.LinkRate))
	}
	_, err = t.WriteTo(w)
	return err
}
