package main

import (
	"path/filepath"
	"strings"
	"testing"

	"mlfair/internal/cliutil"
)

func TestParseRates(t *testing.T) {
	rs, err := parseRates("0.1, 0.5,0.9")
	if err != nil || len(rs) != 3 || rs[1] != 0.5 {
		t.Fatalf("parseRates -> %v, %v", rs, err)
	}
	if _, err := parseRates("0.1,abc"); err == nil {
		t.Fatal("bad rate accepted")
	}
}

func TestModes(t *testing.T) {
	for _, mode := range []string{"fig5", "fig6", "layer", "fairrate"} {
		var b strings.Builder
		if err := run(&b, mode, "0.1,0.5", 1, 30, 10, 3, 2); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if b.Len() == 0 {
			t.Fatalf("mode %s produced no output", mode)
		}
	}
	var b strings.Builder
	if err := run(&b, "bogus", "", 1, 1, 1, 0, 1); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

// TestDeclarativeTrio: redundancy runs the shared -spec path like the
// simulator binaries (the cliutil port).
func TestDeclarativeTrio(t *testing.T) {
	var b strings.Builder
	d := &cliutil.Declarative{Spec: filepath.Join("..", "..", "internal", "scenario", "testdata", "paths-analytic.json")}
	ran, err := d.Run(&b)
	if !ran || err != nil {
		t.Fatalf("spec run: ran=%v err=%v", ran, err)
	}
	if b.Len() == 0 {
		t.Fatal("spec run produced no output")
	}
	both := &cliutil.Declarative{Spec: "a.json", Sweep: "b.json"}
	if ran, err := both.Run(&b); !ran || err == nil {
		t.Fatal("-spec with -sweep accepted")
	}
}

func TestLayerModeValues(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "layer", "0.5,0.5", 1, 0, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// E[U] = 1-(0.5)^2 = 0.75, redundancy 1.5, bound 2.
	for _, want := range []string{"0.75", "1.5", "2"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}
