// Command redundancy evaluates the paper's analytical redundancy
// formulas: the Appendix B expected link rate for a single layer with
// random joins (Figure 5) and the impact of redundancy on constrained
// fair rates (Figure 6), with custom parameters. Like the simulator
// binaries it also runs the declarative files (internal/cliutil):
// -spec executes a scenario.Spec and -sweep a scenario.Sweep.
//
// Usage:
//
//	redundancy -mode layer -rates 0.1,0.1,0.5 -layer-rate 1
//	redundancy -mode fig5
//	redundancy -mode fig6
//	redundancy -mode fairrate -capacity 30 -sessions 10 -multirate 3 -v 2.5
//	redundancy -spec scenario.json
//	redundancy -sweep sweep.json -format csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mlfair/internal/cliutil"
	"mlfair/internal/experiments"
	"mlfair/internal/redundancy"
	"mlfair/internal/trace"
)

func main() {
	var (
		mode      = flag.String("mode", "fig5", "fig5 | fig6 | layer | fairrate")
		rates     = flag.String("rates", "0.1,0.1,0.1", "comma-separated receiver rates (mode=layer)")
		layerRate = flag.Float64("layer-rate", 1, "layer transmission rate Λ (mode=layer)")
		capacity  = flag.Float64("capacity", 30, "link capacity c (mode=fairrate)")
		sessions  = flag.Int("sessions", 10, "sessions n constrained by the link (mode=fairrate)")
		multirate = flag.Int("multirate", 3, "multi-rate sessions m (mode=fairrate)")
		v         = flag.Float64("v", 2, "redundancy v of the multi-rate sessions (mode=fairrate)")
	)
	d := cliutil.RegisterDeclarative(flag.CommandLine)
	ob := cliutil.RegisterObservability(flag.CommandLine, "redundancy")
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "redundancy:", err)
		os.Exit(1)
	}
	if err := ob.Start(); err != nil {
		fail(err)
	}
	ran, err := d.RunObserved(os.Stdout, ob)
	if !ran {
		err = run(os.Stdout, *mode, *rates, *layerRate, *capacity, *sessions, *multirate, *v)
	}
	if serr := ob.Stop(); err == nil {
		err = serr
	}
	if err != nil {
		fail(err)
	}
}

func run(w io.Writer, mode, ratesCSV string, layerRate, capacity float64, n, m int, v float64) error {
	switch mode {
	case "fig5":
		return experiments.Figure5(w)
	case "fig6":
		return experiments.Figure6(w)
	case "layer":
		rates, err := parseRates(ratesCSV)
		if err != nil {
			return err
		}
		t := trace.NewTable("Single-layer random-join redundancy (Appendix B)",
			"quantity", "value")
		t.AddRow("receivers", strconv.Itoa(len(rates)))
		t.AddRow("layer rate Λ", trace.Float(layerRate))
		t.AddRow("efficient link rate (max a)", trace.Float(maxOf(rates)))
		t.AddRow("E[U] (expected link rate)", trace.Float(redundancy.ExpectedLinkRate(rates, layerRate)))
		t.AddRow("redundancy", trace.Float(redundancy.SingleLayer(rates, layerRate)))
		t.AddRow("asymptotic bound Λ/max", trace.Float(redundancy.UpperBound(rates, layerRate)))
		_, err = t.WriteTo(w)
		return err
	case "fairrate":
		t := trace.NewTable("Constrained fair rate under redundancy (Section 3.1)",
			"quantity", "value")
		t.AddRow("capacity c", trace.Float(capacity))
		t.AddRow("sessions n", strconv.Itoa(n))
		t.AddRow("multi-rate m", strconv.Itoa(m))
		t.AddRow("redundancy v", trace.Float(v))
		t.AddRow("fair rate c/((n-m)+mv)", trace.Float(redundancy.ConstrainedFairRate(capacity, n, m, v)))
		t.AddRow("normalized by c/n", trace.Float(redundancy.NormalizedFairRate(float64(m)/float64(n), v)))
		_, err := t.WriteTo(w)
		return err
	}
	return fmt.Errorf("unknown mode %q", mode)
}

func parseRates(csv string) ([]float64, error) {
	parts := strings.Split(csv, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		x, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q: %w", p, err)
		}
		out = append(out, x)
	}
	return out, nil
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
