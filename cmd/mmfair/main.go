// Command mmfair computes the max-min fair allocation of a network
// described in JSON and reports per-receiver rates, bottleneck causes,
// link utilization, and the four fairness properties of the paper.
//
// Usage:
//
//	mmfair network.json
//	mmfair -example > network.json   # print a starter file (Figure 2)
//	cat network.json | mmfair -
//	mmfair -spec scenario.json       # audit a scenario.Spec's benchmark network
//
// JSON schema:
//
//	{
//	  "links": [5, 2, 3, 6],                  // capacities; index = link id
//	  "sessions": [
//	    {"type": "single",                     // "single" | "multi"
//	     "maxRate": 100,                       // omit for unbounded
//	     "redundancy": 1,                      // >= 1; applied on shared links
//	     "paths": [[0,3],[1],[2]]}             // one link set per receiver
//	  ]
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"mlfair/internal/fairness"
	"mlfair/internal/maxmin"
	"mlfair/internal/netmodel"
	"mlfair/internal/redundancy"
	"mlfair/internal/scenario"
	"mlfair/internal/trace"
)

type sessionSpec struct {
	Type       string  `json:"type"`
	MaxRate    float64 `json:"maxRate"`
	Redundancy float64 `json:"redundancy"`
	Paths      [][]int `json:"paths"`
	// Weights optionally assigns per-receiver weights for weighted
	// (TCP-style) max-min fairness; omit for the paper's unweighted
	// definition. If any session specifies weights, unspecified
	// receivers default to weight 1.
	Weights []float64 `json:"weights"`
}

type networkSpec struct {
	Links    []float64     `json:"links"`
	Sessions []sessionSpec `json:"sessions"`
}

const exampleJSON = `{
  "links": [5, 2, 3, 6],
  "sessions": [
    {"type": "single", "maxRate": 100, "paths": [[0, 3], [1], [2]]},
    {"type": "multi", "maxRate": 100, "paths": [[0, 3]]}
  ]
}
`

func main() {
	example := flag.Bool("example", false, "print an example network file (the paper's Figure 2) and exit")
	dot := flag.Bool("dot", false, "emit the network (with allocation annotations) as Graphviz DOT instead of tables")
	spec := flag.String("spec", "", "report on the analytic benchmark network compiled from a scenario.Spec JSON file (docs/SCENARIOS.md)")
	flag.Parse()
	if *example {
		fmt.Print(exampleJSON)
		return
	}
	if *spec != "" {
		if err := runSpec(os.Stdout, *spec, *dot); err != nil {
			fmt.Fprintln(os.Stderr, "mmfair:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mmfair [-dot] <network.json | -> | mmfair -spec scenario.json")
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Arg(0), *dot); err != nil {
		fmt.Fprintln(os.Stderr, "mmfair:", err)
		os.Exit(1)
	}
}

// runSpec compiles a declarative scenario.Spec and reports on its
// analytic benchmark network — the same network the scenario layer's
// "maxmin", "fairness" and "gap" stages audit against, so mmfair's
// bottleneck-cause and utilization tables apply to any scenario file.
func runSpec(w io.Writer, path string, dot bool) error {
	spec, err := scenario.LoadFile(path)
	if err != nil {
		return err
	}
	c, err := scenario.Compile(spec)
	if err != nil {
		return err
	}
	if dot {
		res, err := maxmin.Allocate(c.Benchmark)
		if err != nil {
			return err
		}
		return netmodel.WriteDOT(w, c.Benchmark, res.Alloc)
	}
	return Report(w, c.Benchmark)
}

func run(w io.Writer, path string, dot bool) error {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	net, weights, err := ParseWeighted(data)
	if err != nil {
		return err
	}
	if dot {
		res, err := maxmin.AllocateWeighted(net, weights)
		if err != nil {
			return err
		}
		return netmodel.WriteDOT(w, net, res.Alloc)
	}
	return ReportWeighted(w, net, weights)
}

// Parse builds a network from the JSON description.
func Parse(data []byte) (*netmodel.Network, error) {
	net, _, err := ParseWeighted(data)
	return net, err
}

// ParseWeighted builds a network plus optional receiver weights from the
// JSON description. weights is nil when no session specifies any.
func ParseWeighted(data []byte) (*netmodel.Network, maxmin.Weights, error) {
	var spec networkSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, nil, fmt.Errorf("parsing network: %w", err)
	}
	if len(spec.Links) == 0 {
		return nil, nil, fmt.Errorf("network has no links")
	}
	b := netmodel.NewBuilder()
	for _, c := range spec.Links {
		if c < 0 {
			return nil, nil, fmt.Errorf("negative link capacity %v", c)
		}
		b.AddLink(c)
	}
	anyWeights := false
	var weights maxmin.Weights
	for i, s := range spec.Sessions {
		var t netmodel.SessionType
		switch s.Type {
		case "single":
			t = netmodel.SingleRate
		case "multi", "":
			t = netmodel.MultiRate
		default:
			return nil, nil, fmt.Errorf("session %d: unknown type %q (want single|multi)", i+1, s.Type)
		}
		maxRate := s.MaxRate
		if maxRate == 0 {
			maxRate = netmodel.NoRateCap
		}
		if len(s.Paths) == 0 {
			return nil, nil, fmt.Errorf("session %d has no receivers", i+1)
		}
		id := b.AddSession(t, maxRate, len(s.Paths))
		if s.Redundancy > 1 {
			b.SetLinkRate(id, netmodel.SharedScaledMax(s.Redundancy))
		} else if s.Redundancy != 0 && s.Redundancy < 1 {
			return nil, nil, fmt.Errorf("session %d: redundancy %v < 1", i+1, s.Redundancy)
		}
		w := make([]float64, len(s.Paths))
		for k := range w {
			w[k] = 1
		}
		if s.Weights != nil {
			if len(s.Weights) != len(s.Paths) {
				return nil, nil, fmt.Errorf("session %d: %d weights for %d receivers", i+1, len(s.Weights), len(s.Paths))
			}
			copy(w, s.Weights)
			anyWeights = true
		}
		weights = append(weights, w)
		for k, p := range s.Paths {
			if len(p) == 0 {
				return nil, nil, fmt.Errorf("session %d receiver %d has an empty path", i+1, k+1)
			}
			for _, j := range p {
				if j < 0 || j >= len(spec.Links) {
					return nil, nil, fmt.Errorf("session %d receiver %d: link %d out of range", i+1, k+1, j)
				}
			}
			b.SetPath(id, k, p...)
		}
	}
	net, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	if !anyWeights {
		weights = nil
	}
	return net, weights, nil
}

// Report allocates and prints the full report.
func Report(w io.Writer, net *netmodel.Network) error {
	return ReportWeighted(w, net, nil)
}

// ReportWeighted is Report under optional receiver weights.
func ReportWeighted(w io.Writer, net *netmodel.Network, weights maxmin.Weights) error {
	res, err := maxmin.AllocateWeighted(net, weights)
	if err != nil {
		return err
	}
	a := res.Alloc

	rt := trace.NewTable("Max-min fair receiver rates", "receiver", "type", "rate", "bound by")
	for _, id := range net.ReceiverIDs() {
		c := res.Causes[id]
		why := c.Kind.String()
		if c.Kind != maxmin.CauseMaxRate {
			why = fmt.Sprintf("%s l%d", c.Kind, c.Link+1)
		}
		rt.AddRow(id.String(), net.Session(id.Session).Type.String(),
			trace.Float(a.RateOf(id)), why)
	}
	if _, err := rt.WriteTo(w); err != nil {
		return err
	}

	lt := trace.NewTable("Link utilization", "link", "capacity", "u_j", "fully utilized", "session redundancies")
	for j := 0; j < net.NumLinks(); j++ {
		reds := ""
		for i := 0; i < net.NumSessions(); i++ {
			if r, ok := redundancy.OfAllocation(a, i, j); ok {
				if reds != "" {
					reds += " "
				}
				reds += fmt.Sprintf("S%d:%s", i+1, trace.Float(r))
			}
		}
		lt.AddRow(fmt.Sprintf("l%d", j+1), trace.Float(net.Capacity(j)),
			trace.Float(a.LinkRate(j)), fmt.Sprintf("%v", a.FullyUtilized(j)), reds)
	}
	if _, err := lt.WriteTo(w); err != nil {
		return err
	}

	rep := fairness.Check(a)
	fmt.Fprintf(w, "fairness: %s\n", rep.Summary())
	for _, v := range rep.SamePathViolations {
		fmt.Fprintf(w, "  same-path violation: %s\n", v)
	}
	for _, id := range rep.FullyUtilizedReceiverViolations {
		fmt.Fprintf(w, "  fully-utilized-receiver violation: %s\n", id)
	}
	for _, id := range rep.PerReceiverLinkViolations {
		fmt.Fprintf(w, "  per-receiver-link violation: %s\n", id)
	}
	for _, i := range rep.PerSessionLinkViolations {
		fmt.Fprintf(w, "  per-session-link violation: S%d\n", i+1)
	}
	return nil
}
