package main

import (
	"path/filepath"
	"strings"
	"testing"

	"mlfair/internal/netmodel"
)

func TestParseExample(t *testing.T) {
	net, err := Parse([]byte(exampleJSON))
	if err != nil {
		t.Fatalf("Parse(example): %v", err)
	}
	if net.NumSessions() != 2 || net.NumLinks() != 4 {
		t.Fatalf("sessions=%d links=%d", net.NumSessions(), net.NumLinks())
	}
	if net.Session(0).Type != netmodel.SingleRate {
		t.Fatal("session 1 should be single-rate")
	}
	if net.Session(1).Type != netmodel.MultiRate {
		t.Fatal("session 2 should be multi-rate")
	}
}

func TestParseDefaults(t *testing.T) {
	net, err := Parse([]byte(`{"links":[10],"sessions":[{"paths":[[0]]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	// Untyped = multi; maxRate 0 = unbounded.
	if net.Session(0).Type != netmodel.MultiRate {
		t.Fatal("default type should be multi")
	}
	if !netmodel.Geq(net.Session(0).MaxRate, 1e18) {
		t.Fatalf("default κ = %v, want +Inf", net.Session(0).MaxRate)
	}
}

func TestParseRedundancy(t *testing.T) {
	net, err := Parse([]byte(`{"links":[12],"sessions":[
		{"redundancy": 2, "paths":[[0],[0]]},
		{"paths":[[0]]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := netmodel.AllocationFromRates(net, [][]float64{{1, 1}, {1}})
	if got := a.SessionLinkRate(0, 0); !netmodel.Eq(got, 2) {
		t.Fatalf("redundant session link rate = %v, want 2", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":       `{`,
		"no links":       `{"links":[],"sessions":[]}`,
		"negative cap":   `{"links":[-1],"sessions":[]}`,
		"bad type":       `{"links":[1],"sessions":[{"type":"zigzag","paths":[[0]]}]}`,
		"no receivers":   `{"links":[1],"sessions":[{"paths":[]}]}`,
		"empty path":     `{"links":[1],"sessions":[{"paths":[[]]}]}`,
		"bad link index": `{"links":[1],"sessions":[{"paths":[[7]]}]}`,
		"redundancy <1":  `{"links":[1],"sessions":[{"redundancy":0.5,"paths":[[0]]}]}`,
		"negative link":  `{"links":[1],"sessions":[{"paths":[[-1]]}]}`,
	}
	for name, js := range cases {
		if _, err := Parse([]byte(js)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReportOutput(t *testing.T) {
	net, err := Parse([]byte(exampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Report(&b, net); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Max-min fair receiver rates",
		"Link utilization",
		"r1,1", "r2,1",
		"single-rate-peer",
		"same-path violation",
		"fairness:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in report:\n%s", want, out)
		}
	}
}

func TestParseWeighted(t *testing.T) {
	net, w, err := ParseWeighted([]byte(`{"links":[10],"sessions":[
		{"paths":[[0]],"weights":[3]},
		{"paths":[[0]]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if w == nil || w[0][0] != 3 || w[1][0] != 1 {
		t.Fatalf("weights = %v", w)
	}
	if net.NumSessions() != 2 {
		t.Fatal("sessions wrong")
	}
	// No weights anywhere -> nil.
	_, w2, err := ParseWeighted([]byte(`{"links":[10],"sessions":[{"paths":[[0]]}]}`))
	if err != nil || w2 != nil {
		t.Fatalf("w2 = %v err = %v", w2, err)
	}
	// Wrong weight count.
	if _, _, err := ParseWeighted([]byte(`{"links":[10],"sessions":[{"paths":[[0]],"weights":[1,2]}]}`)); err == nil {
		t.Fatal("weight count mismatch accepted")
	}
}

func TestReportWeighted(t *testing.T) {
	net, w, err := ParseWeighted([]byte(`{"links":[12],"sessions":[
		{"paths":[[0]],"weights":[1]},
		{"paths":[[0]],"weights":[3]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := ReportWeighted(&b, net, w); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "3") || !strings.Contains(out, "9") {
		t.Fatalf("weighted rates 3 and 9 missing:\n%s", out)
	}
}

// TestRunSpec: -spec compiles a scenario.Spec and reports on its
// analytic benchmark network (here the scenario corpus' analytic tree).
func TestRunSpec(t *testing.T) {
	var b strings.Builder
	path := filepath.Join("..", "..", "internal", "scenario", "testdata", "paths-analytic.json")
	if err := runSpec(&b, path, false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Max-min fair receiver rates", "Link utilization", "fairness:"} {
		if !strings.Contains(out, want) {
			t.Errorf("spec report missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	if err := runSpec(&b, path, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "graph mlfair") {
		t.Errorf("spec DOT output missing graph:\n%s", b.String())
	}
	if err := runSpec(&b, filepath.Join("testdata", "no-such-file.json"), false); err == nil {
		t.Error("missing spec file accepted")
	}
}
