// Command benchjson converts `go test -bench` text output on stdin
// into a machine-readable JSON document on stdout, for CI artifacts
// (BENCH_netsim.json) and regression dashboards.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkNetsim -benchmem . | go run ./cmd/benchjson > BENCH_netsim.json
//	go test -run '^$' -bench BenchmarkNetsim -benchmem . | go run ./cmd/benchjson -check BENCH_netsim.json
//
// Every benchmark result line ("BenchmarkX-8  N  v1 unit1  v2 unit2 ...")
// becomes an entry with its iteration count and a unit-keyed metric
// map; goos/goarch/pkg/cpu header lines become the env map. Unknown
// lines are ignored, so the tool is safe to feed full `go test` output.
//
// With -check, the parsed run is additionally compared against a
// committed baseline document: the gate fails (exit 1) when any
// baseline benchmark's events/sec throughput regresses by more than
// -max-regress (default 0.25), when any benchmark reporting
// allocs/event exceeds the absolute -max-allocs-per-event budget
// (default 0.02 — the hot path must stay allocation-free even as
// probe hooks and other instrumentation land), when any benchmark
// reporting peak-RSS-bytes exceeds the absolute -max-rss-bytes budget
// (0 disables — the planetary-scale memory gate), when a baseline
// benchmark disappears from the run entirely, or when a baseline
// entry carries no positive events/sec metric (a corrupt baseline
// must not silently shrink the gate's coverage). Benchmark names are
// compared with the -GOMAXPROCS suffix stripped, so a baseline
// travels across machines with different core counts; when the suffix
// differs between baseline and run, that benchmark's throughput
// comparison downgrades to a WARNING (multi-core events/sec scales
// with the core count — a smaller runner must not mis-gate), while
// the absolute allocs and RSS budgets still apply. When the baseline
// was produced under a different go version, GOARCH, or host CPU
// count the check still runs but prints a WARNING first — absolute
// throughput comparisons across toolchains, architectures, or
// machine sizes are advisory, not authoritative.
//
// -speedup derives a "speedup" metric on parallel/sequential twin
// pairs ("Par=Seq", comma-separated) from this run's events/sec, so
// shard-scaling benchmarks carry their ratio into the document.
//
// -overhead gates instrumentation cost within the current run alone,
// independent of any baseline (and usable without -check — the PGO CI
// job feeds a merged PGO+NoPGO run and uses only this gate): each
// "Instr=Base:frac" pair requires the instrumented benchmark to hold
// at least (1-frac) of its base twin's events/sec and to add no
// per-event allocations.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mlfair/internal/obs"
)

// Bench is one benchmark result. GOMAXPROCS is the parallelism the
// benchmark ran under, recovered from the -N name suffix (0 when the
// name carries none) — recorded per entry because multi-core
// benchmarks' events/sec is only comparable at equal core counts.
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	GOMAXPROCS int                `json:"gomaxprocs,omitempty"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the emitted document. Manifest carries run provenance (go
// version, host CPU, VCS revision) so a committed baseline records
// where its numbers came from; older documents without one still load.
type Doc struct {
	Env        map[string]string `json:"env"`
	Manifest   *obs.Manifest     `json:"manifest,omitempty"`
	Benchmarks []Bench           `json:"benchmarks"`
}

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Env: map[string]string{}, Benchmarks: []Bench{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if k, v, ok := strings.Cut(line, ": "); ok && (k == "goos" || k == "goarch" || k == "pkg" || k == "cpu") {
			doc.Env[k] = v
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Bench{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		_, b.GOMAXPROCS = splitProcs(fields[0])
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	return doc, sc.Err()
}

// splitProcs splits a benchmark name into its base name and the
// trailing -GOMAXPROCS suffix ("BenchmarkNetsimLargeStar-8" →
// "BenchmarkNetsimLargeStar", 8); procs is 0 when the name carries no
// numeric suffix.
func splitProcs(name string) (string, int) {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i], n
		}
	}
	return name, 0
}

// normalizeName strips the trailing -GOMAXPROCS suffix from a
// benchmark name ("BenchmarkNetsimLargeStar-8" →
// "BenchmarkNetsimLargeStar").
func normalizeName(name string) string {
	base, _ := splitProcs(name)
	return base
}

// checkRegression compares the current run's events/sec throughput
// against the baseline and returns a per-benchmark report plus whether
// the gate fails: a benchmark regresses when its throughput drops
// below (1 - maxRegress) of the baseline, and a baseline benchmark
// missing from the run is a failure too (a silently deleted benchmark
// must not pass the gate). When the two runs executed a benchmark at
// different GOMAXPROCS (the -N name suffix), the throughput comparison
// is a WARNING instead of a gate — a multi-core benchmark's events/sec
// scales with the core count, so a 4-core runner must not flag a
// "regression" against an 8-core baseline (the absolute allocs and RSS
// gates still apply; they are core-count independent).
func checkRegression(baseline, current *Doc, maxRegress float64) (string, bool) {
	type entry struct {
		v     float64
		procs int
	}
	cur := map[string]entry{}
	for _, b := range current.Benchmarks {
		if v, ok := b.Metrics["events/sec"]; ok {
			name, procs := splitProcs(b.Name)
			cur[name] = entry{v, procs}
		}
	}
	var rep strings.Builder
	failed := false
	for _, base := range baseline.Benchmarks {
		want, ok := base.Metrics["events/sec"]
		name, baseProcs := splitProcs(base.Name)
		if !ok || want <= 0 {
			// A baseline entry without a positive throughput metric is a
			// corrupt or hand-edited document; skipping it would silently
			// shrink the gate's coverage.
			fmt.Fprintf(&rep, "BADBASE    %s: baseline entry has no positive events/sec metric\n", name)
			failed = true
			continue
		}
		got, ok := cur[name]
		if !ok {
			fmt.Fprintf(&rep, "MISSING    %s: in baseline, absent from this run\n", name)
			failed = true
			continue
		}
		if baseProcs > 0 && got.procs > 0 && baseProcs != got.procs {
			fmt.Fprintf(&rep, "WARNING    %s: baseline at GOMAXPROCS=%d, this run at %d: %.4g -> %.4g events/sec (%+.1f%%) not gated\n",
				name, baseProcs, got.procs, want, got.v, (got.v/want-1)*100)
			continue
		}
		status := "ok"
		if got.v < want*(1-maxRegress) {
			status = "REGRESSION"
			failed = true
		}
		fmt.Fprintf(&rep, "%-10s %s: %.4g -> %.4g events/sec (%+.1f%%)\n",
			status, name, want, got.v, (got.v/want-1)*100)
	}
	return rep.String(), failed
}

// checkAllocs gates allocs/event absolutely: every benchmark in the
// current run that reports the metric must stay at or below the
// budget. The gate reads the current run (not just the baseline) on
// purpose — a freshly added benchmark that leaks per-event allocations
// must fail before it ever becomes a baseline.
func checkAllocs(current *Doc, maxAllocs float64) (string, bool) {
	var rep strings.Builder
	failed := false
	for _, b := range current.Benchmarks {
		got, ok := b.Metrics["allocs/event"]
		if !ok {
			continue
		}
		status := "ok"
		if got > maxAllocs {
			status = "ALLOCS"
			failed = true
		}
		fmt.Fprintf(&rep, "%-10s %s: %.4g allocs/event (budget %.4g)\n",
			status, normalizeName(b.Name), got, maxAllocs)
	}
	return rep.String(), failed
}

// checkRSS gates peak-RSS-bytes absolutely, like checkAllocs: every
// benchmark in the current run that reports the metric must stay at or
// below the byte budget. The metric is the kernel's per-process peak
// (obs.ReadPeakRSS), so later benchmarks inherit earlier ones' high
// water — the planetary suite orders its benchmarks smallest-first and
// budgets the largest. 0 disables the gate.
func checkRSS(current *Doc, maxRSS int64) (string, bool) {
	if maxRSS <= 0 {
		return "", false
	}
	var rep strings.Builder
	failed := false
	for _, b := range current.Benchmarks {
		got, ok := b.Metrics["peak-RSS-bytes"]
		if !ok {
			continue
		}
		status := "ok"
		if got > float64(maxRSS) {
			status = "RSS"
			failed = true
		}
		fmt.Fprintf(&rep, "%-10s %s: %.0f peak-RSS-bytes (budget %d)\n",
			status, normalizeName(b.Name), got, maxRSS)
	}
	return rep.String(), failed
}

// envWarnings compares the baseline's recorded environment (manifest
// when present, env header as fallback) against the current run's and
// returns WARNING lines for go-version or GOARCH mismatches. These
// warn rather than fail: absolute throughput numbers measured under a
// different toolchain or architecture are a weaker signal, but the
// relative gates are still worth running.
func envWarnings(baseline, current *Doc) string {
	baseGo, baseArch := "", baseline.Env["goarch"]
	if baseline.Manifest != nil {
		baseGo = baseline.Manifest.GoVersion
		if baseline.Manifest.GOARCH != "" {
			baseArch = baseline.Manifest.GOARCH
		}
	}
	curGo, curArch := "", current.Env["goarch"]
	if current.Manifest != nil {
		curGo = current.Manifest.GoVersion
		if current.Manifest.GOARCH != "" {
			curArch = current.Manifest.GOARCH
		}
	}
	var rep strings.Builder
	if baseGo != "" && curGo != "" && baseGo != curGo {
		fmt.Fprintf(&rep, "WARNING    baseline built with %s, this run with %s: throughput comparison is advisory\n", baseGo, curGo)
	}
	if baseArch != "" && curArch != "" && baseArch != curArch {
		fmt.Fprintf(&rep, "WARNING    baseline measured on %s, this run on %s: throughput comparison is advisory\n", baseArch, curArch)
	}
	if baseline.Manifest != nil && current.Manifest != nil &&
		baseline.Manifest.NumCPU > 0 && current.Manifest.NumCPU > 0 &&
		baseline.Manifest.NumCPU != current.Manifest.NumCPU {
		fmt.Fprintf(&rep, "WARNING    baseline host had %d CPUs, this host has %d: multi-core throughput comparison is advisory\n",
			baseline.Manifest.NumCPU, current.Manifest.NumCPU)
	}
	return rep.String()
}

// parseSpeedup parses a comma-separated list of "Par=Seq" benchmark
// pairs ("BenchmarkXSubtree=BenchmarkXSubtreeSeq").
func parseSpeedup(s string) ([][2]string, error) {
	if s == "" {
		return nil, nil
	}
	var pairs [][2]string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		par, seq, ok := strings.Cut(part, "=")
		if !ok || par == "" || seq == "" {
			return nil, fmt.Errorf("speedup spec %q: want Par=Seq", part)
		}
		pairs = append(pairs, [2]string{par, seq})
	}
	return pairs, nil
}

// applySpeedup derives a "speedup" metric on each pair's parallel
// benchmark — its events/sec over its sequential twin's, both measured
// in this run — so shard-scaling twins carry their ratio into the
// emitted document and dashboards need no cross-entry arithmetic. A
// pair with a side missing (or a throughput-less twin) only warns: the
// metric is derived data, not a gate.
func applySpeedup(doc *Doc, pairs [][2]string) string {
	byName := map[string]*Bench{}
	for i := range doc.Benchmarks {
		byName[normalizeName(doc.Benchmarks[i].Name)] = &doc.Benchmarks[i]
	}
	var rep strings.Builder
	for _, pr := range pairs {
		par, pok := byName[normalizeName(pr[0])]
		seq, sok := byName[normalizeName(pr[1])]
		if !pok || !sok {
			fmt.Fprintf(&rep, "WARNING    speedup pair %s=%s: side absent from this run\n", pr[0], pr[1])
			continue
		}
		pv, sv := par.Metrics["events/sec"], seq.Metrics["events/sec"]
		if pv <= 0 || sv <= 0 {
			fmt.Fprintf(&rep, "WARNING    speedup pair %s=%s: no positive events/sec on both sides\n", pr[0], pr[1])
			continue
		}
		par.Metrics["speedup"] = pv / sv
		fmt.Fprintf(&rep, "SPEEDUP    %s: %.2fx over %s\n",
			normalizeName(par.Name), pv/sv, normalizeName(seq.Name))
	}
	return rep.String()
}

// overheadSpec is one parsed -overhead pair: the instrumented
// benchmark must hold at least (1-maxFrac) of the base benchmark's
// events/sec within the same run.
type overheadSpec struct {
	instr, base string
	maxFrac     float64
}

// parseOverhead parses a comma-separated list of "Instr=Base:frac"
// pairs ("BenchmarkXInstrumented=BenchmarkX:0.02").
func parseOverhead(s string) ([]overheadSpec, error) {
	if s == "" {
		return nil, nil
	}
	var specs []overheadSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		instr, rest, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("overhead spec %q: want Instr=Base:frac", part)
		}
		base, fracStr, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("overhead spec %q: want Instr=Base:frac", part)
		}
		frac, err := strconv.ParseFloat(fracStr, 64)
		if err != nil || frac < 0 || frac >= 1 {
			return nil, fmt.Errorf("overhead spec %q: bad fraction %q", part, fracStr)
		}
		specs = append(specs, overheadSpec{instr: instr, base: base, maxFrac: frac})
	}
	return specs, nil
}

// overheadAllocsEpsilon bounds how much allocs/event the instrumented
// twin may add over its base. The stats flush is a handful of atomic
// adds once per run, so the true delta is zero; the epsilon only
// absorbs measurement noise from differing events/op denominators.
const overheadAllocsEpsilon = 1e-4

// checkOverhead gates instrumented-vs-base benchmark pairs within the
// current run: both twins measured on the same machine in the same
// invocation, so the comparison is machine-independent and needs no
// committed baseline. A pair with either side missing fails — the gate
// must not silently pass because a benchmark was renamed away.
func checkOverhead(current *Doc, specs []overheadSpec) (string, bool) {
	byName := map[string]Bench{}
	for _, b := range current.Benchmarks {
		byName[normalizeName(b.Name)] = b
	}
	var rep strings.Builder
	failed := false
	for _, sp := range specs {
		instr, iok := byName[normalizeName(sp.instr)]
		base, bok := byName[normalizeName(sp.base)]
		if !iok || !bok {
			for name, ok := range map[string]bool{sp.instr: iok, sp.base: bok} {
				if !ok {
					fmt.Fprintf(&rep, "MISSING    %s: required by -overhead, absent from this run\n", normalizeName(name))
				}
			}
			failed = true
			continue
		}
		iv, bv := instr.Metrics["events/sec"], base.Metrics["events/sec"]
		if bv <= 0 {
			fmt.Fprintf(&rep, "MISSING    %s: no events/sec metric for -overhead base\n", normalizeName(sp.base))
			failed = true
			continue
		}
		status := "ok"
		if iv < bv*(1-sp.maxFrac) {
			status = "OVERHEAD"
			failed = true
		}
		fmt.Fprintf(&rep, "%-10s %s vs %s: %.4g -> %.4g events/sec (%+.1f%%, budget -%.1f%%)\n",
			status, normalizeName(sp.instr), normalizeName(sp.base), bv, iv, (iv/bv-1)*100, sp.maxFrac*100)
		ia, iok2 := instr.Metrics["allocs/event"]
		ba := base.Metrics["allocs/event"]
		if iok2 && ia > ba+overheadAllocsEpsilon {
			fmt.Fprintf(&rep, "ALLOCS     %s: %.4g allocs/event vs base %.4g (instrumentation must not allocate)\n",
				normalizeName(sp.instr), ia, ba)
			failed = true
		}
	}
	return rep.String(), failed
}

func main() {
	check := flag.String("check", "", "baseline JSON document to gate events/sec regressions against")
	overhead := flag.String("overhead", "", "comma-separated Instr=Base:frac pairs gating instrumented overhead within this run (independent of -check)")
	speedup := flag.String("speedup", "", "comma-separated Par=Seq pairs deriving a speedup metric on the parallel twin from this run's events/sec")
	maxRegress := flag.Float64("max-regress", 0.25, "maximum tolerated fractional events/sec regression vs the baseline")
	maxAllocs := flag.Float64("max-allocs-per-event", 0.02, "absolute allocs/event budget for every benchmark reporting the metric (with -check)")
	maxRSS := flag.Int64("max-rss-bytes", 0, "absolute peak-RSS-bytes budget for every benchmark reporting the metric (with -check; 0 disables)")
	flag.Parse()
	overheads, err := parseOverhead(*overhead)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	speedups, err := parseSpeedup(*speedup)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	man := obs.NewManifest("benchjson")
	doc.Manifest = &man
	// Derived metrics land before the document is emitted, so the
	// committed baseline carries them too.
	fmt.Fprint(os.Stderr, applySpeedup(doc, speedups))
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	// The gates are independent: -check compares against a committed
	// baseline (and brings the allocs budget with it), while -overhead
	// compares twin benchmarks within this run alone — the PGO CI job
	// uses -overhead with no baseline at all.
	var failed, allocFailed, rssFailed bool
	if *check != "" {
		raw, err := os.ReadFile(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var baseline Doc
		if err := json.Unmarshal(raw, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline %s: %v\n", *check, err)
			os.Exit(1)
		}
		fmt.Fprint(os.Stderr, envWarnings(&baseline, doc))
		var report string
		report, failed = checkRegression(&baseline, doc, *maxRegress)
		fmt.Fprint(os.Stderr, report)
		var allocReport string
		allocReport, allocFailed = checkAllocs(doc, *maxAllocs)
		fmt.Fprint(os.Stderr, allocReport)
		var rssReport string
		rssReport, rssFailed = checkRSS(doc, *maxRSS)
		fmt.Fprint(os.Stderr, rssReport)
	}
	overReport, overFailed := checkOverhead(doc, overheads)
	fmt.Fprint(os.Stderr, overReport)
	if failed {
		fmt.Fprintf(os.Stderr, "benchjson: events/sec regression gate failed (max tolerated %.0f%%)\n", *maxRegress*100)
	}
	if allocFailed {
		fmt.Fprintf(os.Stderr, "benchjson: allocs/event gate failed (budget %g)\n", *maxAllocs)
	}
	if rssFailed {
		fmt.Fprintf(os.Stderr, "benchjson: peak-RSS gate failed (budget %d bytes)\n", *maxRSS)
	}
	if overFailed {
		fmt.Fprintf(os.Stderr, "benchjson: instrumented-overhead gate failed\n")
	}
	if failed || allocFailed || rssFailed || overFailed {
		os.Exit(1)
	}
}
