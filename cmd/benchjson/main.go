// Command benchjson converts `go test -bench` text output on stdin
// into a machine-readable JSON document on stdout, for CI artifacts
// (BENCH_netsim.json) and regression dashboards.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkNetsim -benchmem . | go run ./cmd/benchjson > BENCH_netsim.json
//	go test -run '^$' -bench BenchmarkNetsim -benchmem . | go run ./cmd/benchjson -check BENCH_netsim.json
//
// Every benchmark result line ("BenchmarkX-8  N  v1 unit1  v2 unit2 ...")
// becomes an entry with its iteration count and a unit-keyed metric
// map; goos/goarch/pkg/cpu header lines become the env map. Unknown
// lines are ignored, so the tool is safe to feed full `go test` output.
//
// With -check, the parsed run is additionally compared against a
// committed baseline document: the gate fails (exit 1) when any
// baseline benchmark's events/sec throughput regresses by more than
// -max-regress (default 0.25), when any benchmark reporting
// allocs/event exceeds the absolute -max-allocs-per-event budget
// (default 0.02 — the hot path must stay allocation-free even as
// probe hooks and other instrumentation land), or when a baseline
// benchmark disappears from the run entirely. Benchmark names are
// compared with the -GOMAXPROCS suffix stripped, so a baseline
// travels across machines with different core counts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Bench is one benchmark result.
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the emitted document.
type Doc struct {
	Env        map[string]string `json:"env"`
	Benchmarks []Bench           `json:"benchmarks"`
}

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Env: map[string]string{}, Benchmarks: []Bench{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if k, v, ok := strings.Cut(line, ": "); ok && (k == "goos" || k == "goarch" || k == "pkg" || k == "cpu") {
			doc.Env[k] = v
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Bench{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	return doc, sc.Err()
}

// normalizeName strips the trailing -GOMAXPROCS suffix from a
// benchmark name ("BenchmarkNetsimLargeStar-8" →
// "BenchmarkNetsimLargeStar").
func normalizeName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// checkRegression compares the current run's events/sec throughput
// against the baseline and returns a per-benchmark report plus whether
// the gate fails: a benchmark regresses when its throughput drops
// below (1 - maxRegress) of the baseline, and a baseline benchmark
// missing from the run is a failure too (a silently deleted benchmark
// must not pass the gate).
func checkRegression(baseline, current *Doc, maxRegress float64) (string, bool) {
	cur := map[string]float64{}
	for _, b := range current.Benchmarks {
		if v, ok := b.Metrics["events/sec"]; ok {
			cur[normalizeName(b.Name)] = v
		}
	}
	var rep strings.Builder
	failed := false
	for _, base := range baseline.Benchmarks {
		want, ok := base.Metrics["events/sec"]
		if !ok || want <= 0 {
			continue
		}
		name := normalizeName(base.Name)
		got, ok := cur[name]
		if !ok {
			fmt.Fprintf(&rep, "MISSING    %s: in baseline, absent from this run\n", name)
			failed = true
			continue
		}
		status := "ok"
		if got < want*(1-maxRegress) {
			status = "REGRESSION"
			failed = true
		}
		fmt.Fprintf(&rep, "%-10s %s: %.4g -> %.4g events/sec (%+.1f%%)\n",
			status, name, want, got, (got/want-1)*100)
	}
	return rep.String(), failed
}

// checkAllocs gates allocs/event absolutely: every benchmark in the
// current run that reports the metric must stay at or below the
// budget. The gate reads the current run (not just the baseline) on
// purpose — a freshly added benchmark that leaks per-event allocations
// must fail before it ever becomes a baseline.
func checkAllocs(current *Doc, maxAllocs float64) (string, bool) {
	var rep strings.Builder
	failed := false
	for _, b := range current.Benchmarks {
		got, ok := b.Metrics["allocs/event"]
		if !ok {
			continue
		}
		status := "ok"
		if got > maxAllocs {
			status = "ALLOCS"
			failed = true
		}
		fmt.Fprintf(&rep, "%-10s %s: %.4g allocs/event (budget %.4g)\n",
			status, normalizeName(b.Name), got, maxAllocs)
	}
	return rep.String(), failed
}

func main() {
	check := flag.String("check", "", "baseline JSON document to gate events/sec regressions against")
	maxRegress := flag.Float64("max-regress", 0.25, "maximum tolerated fractional events/sec regression vs the baseline")
	maxAllocs := flag.Float64("max-allocs-per-event", 0.02, "absolute allocs/event budget for every benchmark reporting the metric (with -check)")
	flag.Parse()
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *check == "" {
		return
	}
	raw, err := os.ReadFile(*check)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var baseline Doc
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: baseline %s: %v\n", *check, err)
		os.Exit(1)
	}
	report, failed := checkRegression(&baseline, doc, *maxRegress)
	fmt.Fprint(os.Stderr, report)
	allocReport, allocFailed := checkAllocs(doc, *maxAllocs)
	fmt.Fprint(os.Stderr, allocReport)
	if failed {
		fmt.Fprintf(os.Stderr, "benchjson: events/sec regression gate failed (max tolerated %.0f%%)\n", *maxRegress*100)
	}
	if allocFailed {
		fmt.Fprintf(os.Stderr, "benchjson: allocs/event gate failed (budget %g)\n", *maxAllocs)
	}
	if failed || allocFailed {
		os.Exit(1)
	}
}
