// Command benchjson converts `go test -bench` text output on stdin
// into a machine-readable JSON document on stdout, for CI artifacts
// (BENCH_netsim.json) and regression dashboards.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkNetsim -benchmem . | go run ./cmd/benchjson > BENCH_netsim.json
//
// Every benchmark result line ("BenchmarkX-8  N  v1 unit1  v2 unit2 ...")
// becomes an entry with its iteration count and a unit-keyed metric
// map; goos/goarch/pkg/cpu header lines become the env map. Unknown
// lines are ignored, so the tool is safe to feed full `go test` output.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Bench is one benchmark result.
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the emitted document.
type Doc struct {
	Env        map[string]string `json:"env"`
	Benchmarks []Bench           `json:"benchmarks"`
}

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Env: map[string]string{}, Benchmarks: []Bench{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if k, v, ok := strings.Cut(line, ": "); ok && (k == "goos" || k == "goarch" || k == "pkg" || k == "cpu") {
			doc.Env[k] = v
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Bench{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	return doc, sc.Err()
}

func main() {
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
