package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: mlfair
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkNetsimLargeStar-8   286   3999265 ns/op   0.0000894 allocs/event   201378085 events/sec   152488 B/op   72 allocs/op
BenchmarkNetsimParallelRunner   170   7114865 ns/op   191842994 events/sec
PASS
ok  	mlfair	9.192s
some unrelated noise
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Env["goos"] != "linux" || doc.Env["cpu"] == "" {
		t.Fatalf("env not captured: %v", doc.Env)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	star := doc.Benchmarks[0]
	if star.Name != "BenchmarkNetsimLargeStar-8" || star.Iterations != 286 {
		t.Fatalf("bad first benchmark: %+v", star)
	}
	if star.Metrics["events/sec"] != 201378085 {
		t.Fatalf("events/sec = %v", star.Metrics["events/sec"])
	}
	if star.Metrics["allocs/event"] != 0.0000894 {
		t.Fatalf("allocs/event = %v", star.Metrics["allocs/event"])
	}
	if doc.Benchmarks[1].Metrics["ns/op"] != 7114865 {
		t.Fatalf("runner ns/op = %v", doc.Benchmarks[1].Metrics["ns/op"])
	}
}

func TestParseEmptyAndMalformed(t *testing.T) {
	doc, err := parse(strings.NewReader("BenchmarkBroken-8 notanint 12 ns/op\nBenchmarkOdd-8 3 12\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("malformed lines accepted: %+v", doc.Benchmarks)
	}
}

func TestNormalizeName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkNetsimLargeStar-8": "BenchmarkNetsimLargeStar",
		"BenchmarkNetsimLargeStar-2": "BenchmarkNetsimLargeStar",
		"BenchmarkNetsimLargeStar":   "BenchmarkNetsimLargeStar",
		"BenchmarkFoo-bar":           "BenchmarkFoo-bar",
	} {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func benchDoc(pairs map[string]float64) *Doc {
	d := &Doc{Env: map[string]string{}}
	for name, v := range pairs {
		d.Benchmarks = append(d.Benchmarks, Bench{
			Name: name, Iterations: 1,
			Metrics: map[string]float64{"events/sec": v},
		})
	}
	return d
}

func TestCheckRegression(t *testing.T) {
	baseline := benchDoc(map[string]float64{"BenchmarkA-8": 100, "BenchmarkB-8": 200})

	// Within tolerance (and across core-count suffixes): passes.
	rep, failed := checkRegression(baseline, benchDoc(map[string]float64{"BenchmarkA-4": 80, "BenchmarkB-2": 210}), 0.25)
	if failed {
		t.Fatalf("within-tolerance run failed:\n%s", rep)
	}
	// A >25% drop fails.
	rep, failed = checkRegression(baseline, benchDoc(map[string]float64{"BenchmarkA-8": 74, "BenchmarkB-8": 210}), 0.25)
	if !failed || !strings.Contains(rep, "REGRESSION BenchmarkA") {
		t.Fatalf("regression not flagged:\n%s", rep)
	}
	// A baseline benchmark missing from the run fails.
	rep, failed = checkRegression(baseline, benchDoc(map[string]float64{"BenchmarkA-8": 100}), 0.25)
	if !failed || !strings.Contains(rep, "MISSING    BenchmarkB") {
		t.Fatalf("missing benchmark not flagged:\n%s", rep)
	}
	// Benchmarks without events/sec in the baseline are ignored.
	noEv := &Doc{Benchmarks: []Bench{{Name: "BenchmarkC-8", Iterations: 1, Metrics: map[string]float64{"ns/op": 5}}}}
	if rep, failed := checkRegression(noEv, benchDoc(nil), 0.25); failed {
		t.Fatalf("baseline without events/sec failed:\n%s", rep)
	}
}

func allocDoc(pairs map[string]float64) *Doc {
	d := &Doc{Env: map[string]string{}}
	for name, v := range pairs {
		d.Benchmarks = append(d.Benchmarks, Bench{
			Name: name, Iterations: 1,
			Metrics: map[string]float64{"allocs/event": v},
		})
	}
	return d
}

func TestCheckAllocs(t *testing.T) {
	// Under budget: passes.
	rep, failed := checkAllocs(allocDoc(map[string]float64{"BenchmarkA-8": 0.001, "BenchmarkB-8": 0.019}), 0.02)
	if failed {
		t.Fatalf("under-budget run failed:\n%s", rep)
	}
	// Over budget fails — including for benchmarks absent from any
	// baseline (new benchmarks must not leak per-event allocations).
	rep, failed = checkAllocs(allocDoc(map[string]float64{"BenchmarkA-8": 0.001, "BenchmarkNew-8": 0.5}), 0.02)
	if !failed || !strings.Contains(rep, "ALLOCS") || !strings.Contains(rep, "BenchmarkNew") {
		t.Fatalf("alloc overage not flagged:\n%s", rep)
	}
	// Benchmarks without the metric are ignored.
	noMetric := &Doc{Benchmarks: []Bench{{Name: "BenchmarkC-8", Iterations: 1, Metrics: map[string]float64{"ns/op": 5}}}}
	if rep, failed := checkAllocs(noMetric, 0.02); failed {
		t.Fatalf("metric-less benchmark failed the alloc gate:\n%s", rep)
	}
}
