package main

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"

	"mlfair/internal/obs"
)

func TestParse(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: mlfair
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkNetsimLargeStar-8   286   3999265 ns/op   0.0000894 allocs/event   201378085 events/sec   152488 B/op   72 allocs/op
BenchmarkNetsimParallelRunner   170   7114865 ns/op   191842994 events/sec
PASS
ok  	mlfair	9.192s
some unrelated noise
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Env["goos"] != "linux" || doc.Env["cpu"] == "" {
		t.Fatalf("env not captured: %v", doc.Env)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	star := doc.Benchmarks[0]
	if star.Name != "BenchmarkNetsimLargeStar-8" || star.Iterations != 286 {
		t.Fatalf("bad first benchmark: %+v", star)
	}
	if star.GOMAXPROCS != 8 {
		t.Fatalf("GOMAXPROCS = %d, want 8", star.GOMAXPROCS)
	}
	if doc.Benchmarks[1].GOMAXPROCS != 0 {
		t.Fatalf("suffix-less benchmark GOMAXPROCS = %d, want 0", doc.Benchmarks[1].GOMAXPROCS)
	}
	if star.Metrics["events/sec"] != 201378085 {
		t.Fatalf("events/sec = %v", star.Metrics["events/sec"])
	}
	if star.Metrics["allocs/event"] != 0.0000894 {
		t.Fatalf("allocs/event = %v", star.Metrics["allocs/event"])
	}
	if doc.Benchmarks[1].Metrics["ns/op"] != 7114865 {
		t.Fatalf("runner ns/op = %v", doc.Benchmarks[1].Metrics["ns/op"])
	}
}

func TestParseEmptyAndMalformed(t *testing.T) {
	doc, err := parse(strings.NewReader("BenchmarkBroken-8 notanint 12 ns/op\nBenchmarkOdd-8 3 12\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("malformed lines accepted: %+v", doc.Benchmarks)
	}
}

func TestNormalizeName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkNetsimLargeStar-8": "BenchmarkNetsimLargeStar",
		"BenchmarkNetsimLargeStar-2": "BenchmarkNetsimLargeStar",
		"BenchmarkNetsimLargeStar":   "BenchmarkNetsimLargeStar",
		"BenchmarkFoo-bar":           "BenchmarkFoo-bar",
	} {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func benchDoc(pairs map[string]float64) *Doc {
	d := &Doc{Env: map[string]string{}}
	for name, v := range pairs {
		d.Benchmarks = append(d.Benchmarks, Bench{
			Name: name, Iterations: 1,
			Metrics: map[string]float64{"events/sec": v},
		})
	}
	return d
}

func TestCheckRegression(t *testing.T) {
	baseline := benchDoc(map[string]float64{"BenchmarkA-8": 100, "BenchmarkB-8": 200})

	// Within tolerance at equal core counts: passes.
	rep, failed := checkRegression(baseline, benchDoc(map[string]float64{"BenchmarkA-8": 80, "BenchmarkB-8": 210}), 0.25)
	if failed {
		t.Fatalf("within-tolerance run failed:\n%s", rep)
	}
	// Across core-count suffixes the throughput gate downgrades to a
	// WARNING: even a drop far beyond tolerance must not fail, because
	// a 2-core runner legitimately runs a multi-core benchmark slower
	// than an 8-core baseline.
	rep, failed = checkRegression(baseline, benchDoc(map[string]float64{"BenchmarkA-2": 30, "BenchmarkB-8": 210}), 0.25)
	if failed {
		t.Fatalf("cross-core run mis-gated:\n%s", rep)
	}
	if !strings.Contains(rep, "WARNING    BenchmarkA") || !strings.Contains(rep, "GOMAXPROCS=8") {
		t.Fatalf("cross-core warning missing:\n%s", rep)
	}
	// A >25% drop fails.
	rep, failed = checkRegression(baseline, benchDoc(map[string]float64{"BenchmarkA-8": 74, "BenchmarkB-8": 210}), 0.25)
	if !failed || !strings.Contains(rep, "REGRESSION BenchmarkA") {
		t.Fatalf("regression not flagged:\n%s", rep)
	}
	// A baseline benchmark missing from the run fails.
	rep, failed = checkRegression(baseline, benchDoc(map[string]float64{"BenchmarkA-8": 100}), 0.25)
	if !failed || !strings.Contains(rep, "MISSING    BenchmarkB") {
		t.Fatalf("missing benchmark not flagged:\n%s", rep)
	}
	// A baseline entry without a positive events/sec metric fails the
	// gate: a corrupt or hand-edited baseline must not silently shrink
	// coverage.
	noEv := &Doc{Benchmarks: []Bench{{Name: "BenchmarkC-8", Iterations: 1, Metrics: map[string]float64{"ns/op": 5}}}}
	rep, failed = checkRegression(noEv, benchDoc(nil), 0.25)
	if !failed || !strings.Contains(rep, "BADBASE    BenchmarkC") {
		t.Fatalf("metric-less baseline entry not flagged:\n%s", rep)
	}
	zeroEv := benchDoc(map[string]float64{"BenchmarkD-8": 0})
	rep, failed = checkRegression(zeroEv, benchDoc(map[string]float64{"BenchmarkD-8": 100}), 0.25)
	if !failed || !strings.Contains(rep, "BADBASE    BenchmarkD") {
		t.Fatalf("zero-throughput baseline entry not flagged:\n%s", rep)
	}
}

func allocDoc(pairs map[string]float64) *Doc {
	d := &Doc{Env: map[string]string{}}
	for name, v := range pairs {
		d.Benchmarks = append(d.Benchmarks, Bench{
			Name: name, Iterations: 1,
			Metrics: map[string]float64{"allocs/event": v},
		})
	}
	return d
}

// TestDocManifestRoundTrip: a Doc with an embedded manifest survives
// the JSON round trip, and manifest-less documents (the committed
// baseline predating provenance) still load with a nil Manifest.
func TestDocManifestRoundTrip(t *testing.T) {
	man := obs.NewManifest("benchjson")
	in := &Doc{Env: map[string]string{"goos": "linux"}, Manifest: &man, Benchmarks: []Bench{}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Doc
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Manifest == nil || out.Manifest.Tool != "benchjson" || out.Manifest.GoVersion != runtime.Version() {
		t.Fatalf("manifest did not round-trip: %+v", out.Manifest)
	}
	var old Doc
	if err := json.Unmarshal([]byte(`{"env":{},"benchmarks":[]}`), &old); err != nil {
		t.Fatal(err)
	}
	if old.Manifest != nil {
		t.Fatalf("manifest-less doc grew a manifest: %+v", old.Manifest)
	}
}

// TestEnvWarnings: go-version and GOARCH mismatches between baseline
// and current produce WARNING lines (never a failure); matching or
// unknown environments stay silent.
func TestEnvWarnings(t *testing.T) {
	man := func(goVersion, goarch string) *obs.Manifest {
		return &obs.Manifest{GoVersion: goVersion, GOARCH: goarch}
	}
	cur := &Doc{Env: map[string]string{}, Manifest: man("go1.24.0", "amd64")}

	if w := envWarnings(&Doc{Env: map[string]string{}, Manifest: man("go1.24.0", "amd64")}, cur); w != "" {
		t.Fatalf("matching envs warned:\n%s", w)
	}
	w := envWarnings(&Doc{Env: map[string]string{}, Manifest: man("go1.22.1", "arm64")}, cur)
	if !strings.Contains(w, "WARNING") || !strings.Contains(w, "go1.22.1") || !strings.Contains(w, "arm64") {
		t.Fatalf("mismatched env not warned:\n%s", w)
	}
	// A manifest-less baseline falls back to the env header for GOARCH
	// and skips the go-version comparison entirely.
	w = envWarnings(&Doc{Env: map[string]string{"goarch": "arm64"}}, cur)
	if strings.Contains(w, "go1") {
		t.Fatalf("go version warned without baseline data:\n%s", w)
	}
	if !strings.Contains(w, "arm64") {
		t.Fatalf("env-header goarch mismatch not warned:\n%s", w)
	}
	if w := envWarnings(&Doc{Env: map[string]string{}}, cur); w != "" {
		t.Fatalf("unknown baseline env warned:\n%s", w)
	}
}

func TestParseOverhead(t *testing.T) {
	specs, err := parseOverhead("BenchmarkAInstrumented=BenchmarkA:0.02, BenchmarkB2=BenchmarkB:0.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].instr != "BenchmarkAInstrumented" ||
		specs[0].base != "BenchmarkA" || specs[0].maxFrac != 0.02 || specs[1].maxFrac != 0.1 {
		t.Fatalf("parsed %+v", specs)
	}
	if specs, err := parseOverhead(""); err != nil || specs != nil {
		t.Fatalf("empty spec: %v %v", specs, err)
	}
	for _, bad := range []string{"BenchmarkA:0.02", "BenchmarkA=BenchmarkB", "A=B:1.5", "A=B:x"} {
		if _, err := parseOverhead(bad); err == nil {
			t.Errorf("parseOverhead(%q) accepted", bad)
		}
	}
}

func overheadDoc(pairs map[string][2]float64) *Doc {
	d := &Doc{Env: map[string]string{}}
	for name, v := range pairs {
		d.Benchmarks = append(d.Benchmarks, Bench{
			Name: name, Iterations: 1,
			Metrics: map[string]float64{"events/sec": v[0], "allocs/event": v[1]},
		})
	}
	return d
}

func TestCheckOverhead(t *testing.T) {
	specs := []overheadSpec{{instr: "BenchmarkAInstrumented", base: "BenchmarkA", maxFrac: 0.02}}

	// Within budget (1% slower, same allocs): passes across -N suffixes.
	rep, failed := checkOverhead(overheadDoc(map[string][2]float64{
		"BenchmarkA-8": {100e6, 0.0001}, "BenchmarkAInstrumented-8": {99e6, 0.0001},
	}), specs)
	if failed {
		t.Fatalf("within-budget pair failed:\n%s", rep)
	}
	// 5% slower with a 2% budget fails.
	rep, failed = checkOverhead(overheadDoc(map[string][2]float64{
		"BenchmarkA-8": {100e6, 0.0001}, "BenchmarkAInstrumented-8": {95e6, 0.0001},
	}), specs)
	if !failed || !strings.Contains(rep, "OVERHEAD") {
		t.Fatalf("throughput overhead not flagged:\n%s", rep)
	}
	// Added per-event allocations fail even when throughput holds.
	rep, failed = checkOverhead(overheadDoc(map[string][2]float64{
		"BenchmarkA-8": {100e6, 0.0001}, "BenchmarkAInstrumented-8": {100e6, 0.01},
	}), specs)
	if !failed || !strings.Contains(rep, "ALLOCS") {
		t.Fatalf("alloc overhead not flagged:\n%s", rep)
	}
	// Either twin missing from the run fails — a renamed benchmark must
	// not silently disable the gate.
	rep, failed = checkOverhead(overheadDoc(map[string][2]float64{"BenchmarkA-8": {100e6, 0}}), specs)
	if !failed || !strings.Contains(rep, "MISSING    BenchmarkAInstrumented") {
		t.Fatalf("missing instrumented twin not flagged:\n%s", rep)
	}
	// No specs: trivially green.
	if rep, failed := checkOverhead(overheadDoc(nil), nil); failed {
		t.Fatalf("empty overhead gate failed:\n%s", rep)
	}
}

func TestCheckAllocs(t *testing.T) {
	// Under budget: passes.
	rep, failed := checkAllocs(allocDoc(map[string]float64{"BenchmarkA-8": 0.001, "BenchmarkB-8": 0.019}), 0.02)
	if failed {
		t.Fatalf("under-budget run failed:\n%s", rep)
	}
	// Over budget fails — including for benchmarks absent from any
	// baseline (new benchmarks must not leak per-event allocations).
	rep, failed = checkAllocs(allocDoc(map[string]float64{"BenchmarkA-8": 0.001, "BenchmarkNew-8": 0.5}), 0.02)
	if !failed || !strings.Contains(rep, "ALLOCS") || !strings.Contains(rep, "BenchmarkNew") {
		t.Fatalf("alloc overage not flagged:\n%s", rep)
	}
	// Benchmarks without the metric are ignored.
	noMetric := &Doc{Benchmarks: []Bench{{Name: "BenchmarkC-8", Iterations: 1, Metrics: map[string]float64{"ns/op": 5}}}}
	if rep, failed := checkAllocs(noMetric, 0.02); failed {
		t.Fatalf("metric-less benchmark failed the alloc gate:\n%s", rep)
	}
}

func rssDoc(pairs map[string]float64) *Doc {
	d := &Doc{Env: map[string]string{}}
	for name, v := range pairs {
		d.Benchmarks = append(d.Benchmarks, Bench{
			Name: name, Iterations: 1,
			Metrics: map[string]float64{"peak-RSS-bytes": v},
		})
	}
	return d
}

func TestCheckRSS(t *testing.T) {
	// Under budget: passes.
	rep, failed := checkRSS(rssDoc(map[string]float64{"BenchmarkA-8": 1 << 30}), 2<<30)
	if failed {
		t.Fatalf("under-budget run failed:\n%s", rep)
	}
	// Over budget fails.
	rep, failed = checkRSS(rssDoc(map[string]float64{"BenchmarkA-8": 3 << 30}), 2<<30)
	if !failed || !strings.Contains(rep, "RSS") || !strings.Contains(rep, "BenchmarkA") {
		t.Fatalf("RSS overage not flagged:\n%s", rep)
	}
	// Budget 0 disables the gate entirely.
	if rep, failed := checkRSS(rssDoc(map[string]float64{"BenchmarkA-8": 3 << 30}), 0); failed || rep != "" {
		t.Fatalf("disabled RSS gate produced output:\n%s", rep)
	}
	// Benchmarks without the metric are ignored.
	noMetric := &Doc{Benchmarks: []Bench{{Name: "BenchmarkC-8", Iterations: 1, Metrics: map[string]float64{"ns/op": 5}}}}
	if rep, failed := checkRSS(noMetric, 2<<30); failed {
		t.Fatalf("metric-less benchmark failed the RSS gate:\n%s", rep)
	}
}

func TestParseSpeedup(t *testing.T) {
	pairs, err := parseSpeedup("BenchmarkPar=BenchmarkSeq, BenchmarkX=BenchmarkY")
	if err != nil || len(pairs) != 2 || pairs[0] != [2]string{"BenchmarkPar", "BenchmarkSeq"} {
		t.Fatalf("pairs = %v, err = %v", pairs, err)
	}
	if pairs, err := parseSpeedup(""); err != nil || pairs != nil {
		t.Fatalf("empty spec: %v, %v", pairs, err)
	}
	for _, bad := range []string{"BenchmarkPar", "=BenchmarkSeq", "BenchmarkPar="} {
		if _, err := parseSpeedup(bad); err == nil {
			t.Fatalf("bad spec %q accepted", bad)
		}
	}
}

// TestApplySpeedup: the derived metric lands on the parallel twin
// (core-count suffixes ignored), and missing or throughput-less sides
// warn without gating.
func TestApplySpeedup(t *testing.T) {
	doc := benchDoc(map[string]float64{"BenchmarkPar-8": 300, "BenchmarkSeq-8": 100})
	rep := applySpeedup(doc, [][2]string{{"BenchmarkPar", "BenchmarkSeq"}})
	var par *Bench
	for i := range doc.Benchmarks {
		if normalizeName(doc.Benchmarks[i].Name) == "BenchmarkPar" {
			par = &doc.Benchmarks[i]
		}
	}
	if par == nil || par.Metrics["speedup"] != 3 {
		t.Fatalf("speedup metric not derived: %+v\n%s", doc.Benchmarks, rep)
	}
	if !strings.Contains(rep, "SPEEDUP") {
		t.Fatalf("report missing SPEEDUP line:\n%s", rep)
	}
	rep = applySpeedup(doc, [][2]string{{"BenchmarkPar", "BenchmarkGone"}})
	if !strings.Contains(rep, "WARNING") {
		t.Fatalf("missing twin did not warn:\n%s", rep)
	}
}

// TestEnvWarningsNumCPU: a host-CPU-count mismatch between manifests
// warns (multi-core throughput is machine-size dependent) but never
// fails by itself.
func TestEnvWarningsNumCPU(t *testing.T) {
	base := &Doc{Env: map[string]string{}, Manifest: &obs.Manifest{NumCPU: 8}}
	cur := &Doc{Env: map[string]string{}, Manifest: &obs.Manifest{NumCPU: 2}}
	if rep := envWarnings(base, cur); !strings.Contains(rep, "8 CPUs") || !strings.Contains(rep, "WARNING") {
		t.Fatalf("CPU-count mismatch not warned:\n%s", rep)
	}
	cur.Manifest.NumCPU = 8
	if rep := envWarnings(base, cur); strings.Contains(rep, "CPUs") {
		t.Fatalf("equal CPU counts warned:\n%s", rep)
	}
}
