package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: mlfair
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkNetsimLargeStar-8   286   3999265 ns/op   0.0000894 allocs/event   201378085 events/sec   152488 B/op   72 allocs/op
BenchmarkNetsimParallelRunner   170   7114865 ns/op   191842994 events/sec
PASS
ok  	mlfair	9.192s
some unrelated noise
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Env["goos"] != "linux" || doc.Env["cpu"] == "" {
		t.Fatalf("env not captured: %v", doc.Env)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	star := doc.Benchmarks[0]
	if star.Name != "BenchmarkNetsimLargeStar-8" || star.Iterations != 286 {
		t.Fatalf("bad first benchmark: %+v", star)
	}
	if star.Metrics["events/sec"] != 201378085 {
		t.Fatalf("events/sec = %v", star.Metrics["events/sec"])
	}
	if star.Metrics["allocs/event"] != 0.0000894 {
		t.Fatalf("allocs/event = %v", star.Metrics["allocs/event"])
	}
	if doc.Benchmarks[1].Metrics["ns/op"] != 7114865 {
		t.Fatalf("runner ns/op = %v", doc.Benchmarks[1].Metrics["ns/op"])
	}
}

func TestParseEmptyAndMalformed(t *testing.T) {
	doc, err := parse(strings.NewReader("BenchmarkBroken-8 notanint 12 ns/op\nBenchmarkOdd-8 3 12\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("malformed lines accepted: %+v", doc.Benchmarks)
	}
}
