// Command netsim drives the general-topology event-driven simulator
// (internal/netsim) through its scenario suite — the paper's modified
// star, binary loss trees, multi-session capacity-coupled meshes,
// membership churn, droptail bottlenecks with background cross-traffic,
// the end-to-end max-min fairness audit, and the large-topology
// scenarios (random scale-free graphs and k-ary fat-tree fabrics) —
// or through a declarative scenario.Spec JSON file (-spec; format
// reference in docs/SCENARIOS.md).
//
// Usage:
//
//	netsim -scenario all -quick
//	netsim -scenario star -receivers 100 -packets 100000 -trials 30
//	netsim -scenario scalefree,fattree -packets 200000 -trials 30
//	netsim -scenario audit
//	netsim -spec testdata/scalefree.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mlfair/internal/experiments"
	scen "mlfair/internal/scenario"
)

func main() {
	var (
		scenario  = flag.String("scenario", "all", "star | tree | mesh | churn | background | audit | scalefree | fattree | all (comma-separated)")
		spec      = flag.String("spec", "", "run a declarative scenario.Spec JSON file instead of a named scenario")
		receivers = flag.Int("receivers", 50, "receivers per session")
		packets   = flag.Int("packets", 50000, "sender packet budget per trial")
		trials    = flag.Int("trials", 8, "independent replications (mean ± 95% CI reported)")
		workers   = flag.Int("workers", 0, "parallel replication workers (0 = GOMAXPROCS)")
		seed      = flag.Uint64("seed", 777, "base RNG seed (replication seeds derived deterministically)")
		quick     = flag.Bool("quick", false, "reduced sizes (10 receivers, 10k packets, 3 trials)")
	)
	flag.Parse()
	if *spec != "" {
		if err := scen.RunFile(os.Stdout, *spec); err != nil {
			fmt.Fprintln(os.Stderr, "netsim:", err)
			os.Exit(1)
		}
		return
	}
	o := experiments.NetsimOptions{
		Receivers: *receivers, Packets: *packets, Trials: *trials,
		Workers: *workers, Seed: *seed,
	}
	if *quick {
		o.Receivers, o.Packets, o.Trials = 10, 10000, 3
	}
	if err := run(os.Stdout, *scenario, o); err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		os.Exit(1)
	}
}

var scenarios = []struct {
	name   string
	driver func(io.Writer, experiments.NetsimOptions) error
}{
	{"star", experiments.NetsimStar},
	{"tree", experiments.NetsimTree},
	{"mesh", experiments.NetsimMesh},
	{"churn", experiments.NetsimChurn},
	{"background", experiments.NetsimBackground},
	{"audit", experiments.NetsimAudit},
	{"scalefree", experiments.NetsimScaleFree},
	{"fattree", experiments.NetsimFatTree},
}

func run(w io.Writer, names string, o experiments.NetsimOptions) error {
	want := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if n == "all" {
			for _, s := range scenarios {
				want[s.name] = true
			}
			continue
		}
		found := false
		for _, s := range scenarios {
			if s.name == n {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown scenario %q (have star, tree, mesh, churn, background, audit, scalefree, fattree, all)", n)
		}
		want[n] = true
	}
	if len(want) == 0 {
		return fmt.Errorf("no scenario selected")
	}
	for _, s := range scenarios {
		if !want[s.name] {
			continue
		}
		if err := s.driver(w, o); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
