// Command netsim drives the general-topology event-driven simulator
// (internal/netsim) through its scenario suite — the paper's modified
// star, binary loss trees, multi-session capacity-coupled meshes,
// membership churn, droptail bottlenecks with background cross-traffic,
// the end-to-end max-min fairness audit, the Figure-8 and leave-latency
// sweeps, the large-topology scenarios (random scale-free graphs and
// k-ary fat-tree fabrics), and the planetary-scale single run
// (session-sharded, memory-planned, up to 10^7 receivers) — or through
// declarative files: a
// scenario.Spec (-spec; docs/SCENARIOS.md) or a scenario.Sweep
// parameter study emitting a CSV/JSON result table (-sweep;
// docs/SWEEPS.md).
//
// Usage:
//
//	netsim -scenario all -quick
//	netsim -scenario star -receivers 100 -packets 100000 -trials 30
//	netsim -scenario scalefree,fattree -packets 200000 -trials 30
//	netsim -scenario audit
//	netsim -scenario convergence
//	netsim -spec testdata/scalefree.json
//	netsim -spec testdata/timeseries.json -timeseries
//	netsim -sweep testdata/sweeps/fig8.json
//	netsim -sweep testdata/sweeps/convergence.json
//	netsim -sweep testdata/sweeps/background.json -format json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"strings"

	"mlfair/internal/cliutil"
	"mlfair/internal/experiments"
	scen "mlfair/internal/scenario"
)

func main() {
	os.Exit(realMain())
}

// fail is the binary's single error exit path: every failure reports
// through here with the same prefix.
func fail(err error) int {
	fmt.Fprintln(os.Stderr, "netsim:", err)
	return 1
}

func realMain() int {
	scenarioFlag := flag.String("scenario", "all",
		"star | fig8 | tree | mesh | churn | background | leavelatency | audit | convergence | scalefree | fattree | planetary | all (comma-separated)")
	timeseries := flag.Bool("timeseries", false,
		"with -spec: emit the time-resolved fairness CSV (windowed rates and levels joined against the epoch fair-rate timeline) instead of the text report; the spec needs a probe block")
	f := cliutil.RegisterSim(flag.CommandLine, cliutil.SimDefaults{
		Receivers: 50, Packets: 50000, Trials: 8, Seed: 777, Quick: true,
	})
	ob := cliutil.RegisterObservability(flag.CommandLine, "netsim")
	flag.Parse()
	if err := ob.Start(); err != nil {
		return fail(err)
	}
	err := dispatch(f, ob, *scenarioFlag, *timeseries)
	if serr := ob.Stop(); err == nil {
		err = serr
	}
	if err != nil {
		return fail(err)
	}
	return 0
}

// dispatch routes the parsed flags to the -timeseries, declarative, or
// scenario-driver path.
func dispatch(f *cliutil.SimFlags, ob *cliutil.Observability, scenarios string, timeseries bool) error {
	if timeseries {
		return runTimeseries(os.Stdout, f.Spec, f.Sweep, ob)
	}
	if ran, err := f.RunObserved(os.Stdout, ob); ran {
		return err
	}
	f.ApplyQuick(10, 10000, 3)
	ob.Manifest().SetSeed(f.Seed)
	o := experiments.NetsimOptions{
		Receivers: f.Receivers, Packets: f.Packets, Trials: f.Trials,
		Workers: f.Workers, Seed: f.Seed, Observe: ob.Observe(),
	}
	return run(os.Stdout, scenarios, o)
}

var scenarios = []struct {
	name   string
	driver func(io.Writer, experiments.NetsimOptions) error
}{
	{"star", experiments.NetsimStar},
	{"fig8", experiments.NetsimFigure8},
	{"tree", experiments.NetsimTree},
	{"mesh", experiments.NetsimMesh},
	{"churn", experiments.NetsimChurn},
	{"background", experiments.NetsimBackground},
	{"leavelatency", experiments.NetsimLeaveLatency},
	{"audit", experiments.NetsimAudit},
	{"convergence", experiments.NetsimConvergence},
	{"scalefree", experiments.NetsimScaleFree},
	{"fattree", experiments.NetsimFatTree},
	{"planetary", experiments.NetsimPlanetary},
}

// runTimeseries is the -timeseries path: load the spec, make sure the
// timeseries stage is selected, run, and emit the long-format CSV.
func runTimeseries(w io.Writer, specPath, sweepPath string, ob *cliutil.Observability) error {
	if specPath == "" {
		return fmt.Errorf("-timeseries needs -spec (a scenario file with a probe block)")
	}
	if sweepPath != "" {
		return fmt.Errorf("-timeseries applies to -spec runs, not -sweep")
	}
	spec, err := scen.LoadFile(specPath)
	if err != nil {
		return err
	}
	if !slices.Contains(spec.Metrics, scen.MetricTimeseries) {
		spec.Metrics = append(spec.Metrics, scen.MetricTimeseries)
		if err := spec.Validate(); err != nil {
			return err
		}
	}
	ob.NoteSpec(specPath)
	res, err := scen.RunObserved(spec, ob.Observe())
	if err != nil {
		return err
	}
	return res.WriteTimeseriesCSV(w)
}

func run(w io.Writer, names string, o experiments.NetsimOptions) error {
	want := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if n == "all" {
			for _, s := range scenarios {
				want[s.name] = true
			}
			continue
		}
		found := false
		for _, s := range scenarios {
			if s.name == n {
				found = true
				break
			}
		}
		if !found {
			known := make([]string, len(scenarios))
			for i, s := range scenarios {
				known[i] = s.name
			}
			return fmt.Errorf("unknown scenario %q (have %s, all)", n, strings.Join(known, ", "))
		}
		want[n] = true
	}
	if len(want) == 0 {
		return fmt.Errorf("no scenario selected")
	}
	for _, s := range scenarios {
		if !want[s.name] {
			continue
		}
		if err := s.driver(w, o); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
