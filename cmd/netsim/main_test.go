package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mlfair/internal/experiments"
	scen "mlfair/internal/scenario"
)

func tinyOpts() experiments.NetsimOptions {
	return experiments.NetsimOptions{Receivers: 6, Packets: 5000, Trials: 2, Workers: 2, Seed: 5}
}

func TestRunAllScenarios(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "all", tinyOpts()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"netsim star", "netsim figure 8", "tree depth", "netsim mesh", "netsim churn",
		"background traffic", "netsim leave latency", "netsim audit", "netsim convergence",
		"netsim planetary",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in -scenario all output", want)
		}
	}
}

func TestRunScenarioSubset(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "star, churn", tinyOpts()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "netsim star") || !strings.Contains(out, "netsim churn") {
		t.Errorf("subset missing requested scenarios:\n%s", out)
	}
	if strings.Contains(out, "netsim mesh") {
		t.Errorf("subset ran unrequested scenario:\n%s", out)
	}
}

func TestRunRejectsUnknownScenario(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "zigzag", tinyOpts()); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if err := run(&b, " ", tinyOpts()); err == nil {
		t.Fatal("empty scenario list accepted")
	}
}

// TestSpecReproducesLargeTopoGolden: the committed scenario.Spec JSON
// files drive the exact pipeline the experiment drivers run, so
// `netsim -spec testdata/scalefree.json` + `-spec testdata/fattree.json`
// must reproduce internal/experiments/testdata/largetopo.golden byte
// for byte — the declarative layer and the driver layer are one.
func TestSpecReproducesLargeTopoGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("replication-heavy golden in -short mode")
	}
	var b strings.Builder
	for _, f := range []string{"scalefree.json", "fattree.json"} {
		if err := scen.RunFile(&b, filepath.Join("testdata", f)); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "internal", "experiments", "testdata", "largetopo.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Fatalf("spec-driven output drifted from largetopo.golden:\n--- got ---\n%s\n--- want ---\n%s",
			b.String(), want)
	}
}

// TestSpecAuditEndToEnd: acceptance for the one-call pipeline — a
// single Spec JSON emits simulated rates next to the max-min benchmark
// and the four fairness-property verdicts.
func TestSpecAuditEndToEnd(t *testing.T) {
	var b strings.Builder
	if err := scen.RunFile(&b, filepath.Join("testdata", "audit.json")); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"max-min fair rate", "achieved mean", "fairness gap",
		"max-min benchmark properties", "simulated-rate properties",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("audit spec output missing %q:\n%s", want, out)
		}
	}
}

// sweepCases maps each committed sweep file to the experiment builder
// it re-expresses: the Figure-8 redundancy sweep, the background
// cross-traffic sweep, and the leave-latency sweep, all at the
// drivers' default sizing.
func sweepCases() []struct {
	name  string
	build func() (*scen.Sweep, error)
} {
	o := experiments.DefaultNetsimOptions()
	return []struct {
		name  string
		build func() (*scen.Sweep, error)
	}{
		{"fig8", func() (*scen.Sweep, error) { return experiments.Figure8Sweep(o, 0.0001) }},
		{"background", func() (*scen.Sweep, error) { return experiments.BackgroundSweep(o) }},
		{"leavelatency", func() (*scen.Sweep, error) { return experiments.LeaveLatencySweep(o) }},
		{"convergence", func() (*scen.Sweep, error) { return experiments.ConvergenceSweep(o) }},
	}
}

// TestSweepSpecsMatchBuilders: the committed sweep files ARE the
// experiment drivers' sweeps — builder output and file agree byte for
// byte, and the files decode→encode stably.
func TestSweepSpecsMatchBuilders(t *testing.T) {
	for _, c := range sweepCases() {
		path := filepath.Join("testdata", "sweeps", c.name+".json")
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := c.build()
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := sw.Encode(&b); err != nil {
			t.Fatal(err)
		}
		if b.String() != string(want) {
			t.Errorf("%s: builder sweep drifted from committed file:\n--- builder ---\n%s\n--- file ---\n%s",
				path, b.String(), want)
		}
		loaded, err := scen.LoadSweepFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var b2 strings.Builder
		if err := loaded.Encode(&b2); err != nil {
			t.Fatal(err)
		}
		if b2.String() != string(want) {
			t.Errorf("%s: decode→encode not stable", path)
		}
	}
}

// TestSweepCSVGolden: `netsim -sweep` on each committed sweep file
// reproduces its golden CSV byte for byte — the sweep layer's
// end-to-end determinism acceptance. Regenerate after an intentional
// change with:
//
//	UPDATE_GOLDEN=1 go test ./cmd/netsim -run TestSweepCSVGolden
func TestSweepCSVGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("replication-heavy goldens in -short mode")
	}
	for _, c := range sweepCases() {
		var b strings.Builder
		if err := scen.RunSweepFile(&b, filepath.Join("testdata", "sweeps", c.name+".json"), "csv"); err != nil {
			t.Fatal(err)
		}
		golden := filepath.Join("testdata", "sweeps", c.name+".golden.csv")
		if os.Getenv("UPDATE_GOLDEN") != "" {
			if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("%s updated (%d bytes)", golden, b.Len())
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatal(err)
		}
		if b.String() != string(want) {
			t.Errorf("%s drifted from golden (run with UPDATE_GOLDEN=1 if intentional):\n--- got ---\n%s\n--- want ---\n%s",
				c.name, b.String(), want)
		}
	}
}

// TestTimeseriesFlag: the -timeseries path emits the long-format CSV
// for the committed probe spec, and rejects spec-less or probe-less
// invocations.
func TestTimeseriesFlag(t *testing.T) {
	var b strings.Builder
	if err := runTimeseries(&b, filepath.Join("testdata", "timeseries.json"), "", nil); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(b.String(), "\n")
	if lines[0] != "time,window_start,session,receiver,rate_mean,level_mean,fair_rate,gap" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) < 10 {
		t.Fatalf("only %d CSV lines", len(lines))
	}
	if err := runTimeseries(&b, "", "", nil); err == nil {
		t.Fatal("-timeseries without -spec accepted")
	}
	if err := runTimeseries(&b, "x.json", "y.json", nil); err == nil {
		t.Fatal("-timeseries with -sweep accepted")
	}
	// audit.json carries no probe block: the appended timeseries stage
	// must fail validation, not run silently without windows.
	if err := runTimeseries(&b, filepath.Join("testdata", "audit.json"), "", nil); err == nil {
		t.Fatal("-timeseries on a probe-less spec accepted")
	}
}

// TestTimeseriesSpecStable: the committed timeseries spec decodes and
// re-encodes byte-identically, like every committed spec file.
func TestTimeseriesSpecStable(t *testing.T) {
	path := filepath.Join("testdata", "timeseries.json")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := scen.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := loaded.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Errorf("%s: decode→encode not stable", path)
	}
}

// TestSweepJSONFormat: the -format json path emits the simulated store
// with its quantile sketches.
func TestSweepJSONFormat(t *testing.T) {
	sw, err := experiments.BackgroundSweep(experiments.NetsimOptions{
		Receivers: 4, Packets: 2000, Trials: 2, Workers: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Encode(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := scen.RunSweepFile(&b, path, "json"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"simulated"`, `"sketch"`, `"best_rate"`, `"shared_redundancy"`} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("json sweep output missing %s:\n%s", want, b.String())
		}
	}
	if err := scen.RunSweepFile(&b, path, "yaml"); err == nil {
		t.Error("unknown sweep format accepted")
	}
}
