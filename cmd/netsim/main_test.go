package main

import (
	"strings"
	"testing"

	"mlfair/internal/experiments"
)

func tinyOpts() experiments.NetsimOptions {
	return experiments.NetsimOptions{Receivers: 6, Packets: 5000, Trials: 2, Workers: 2, Seed: 5}
}

func TestRunAllScenarios(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "all", tinyOpts()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"netsim vs sim", "tree depth", "netsim mesh", "netsim churn", "background traffic",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in -scenario all output", want)
		}
	}
}

func TestRunScenarioSubset(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "star, churn", tinyOpts()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "netsim vs sim") || !strings.Contains(out, "netsim churn") {
		t.Errorf("subset missing requested scenarios:\n%s", out)
	}
	if strings.Contains(out, "netsim mesh") {
		t.Errorf("subset ran unrequested scenario:\n%s", out)
	}
}

func TestRunRejectsUnknownScenario(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "zigzag", tinyOpts()); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if err := run(&b, " ", tinyOpts()); err == nil {
		t.Fatal("empty scenario list accepted")
	}
}
