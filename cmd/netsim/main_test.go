package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mlfair/internal/experiments"
	scen "mlfair/internal/scenario"
)

func tinyOpts() experiments.NetsimOptions {
	return experiments.NetsimOptions{Receivers: 6, Packets: 5000, Trials: 2, Workers: 2, Seed: 5}
}

func TestRunAllScenarios(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "all", tinyOpts()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"netsim star", "tree depth", "netsim mesh", "netsim churn", "background traffic",
		"netsim audit",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in -scenario all output", want)
		}
	}
}

func TestRunScenarioSubset(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "star, churn", tinyOpts()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "netsim star") || !strings.Contains(out, "netsim churn") {
		t.Errorf("subset missing requested scenarios:\n%s", out)
	}
	if strings.Contains(out, "netsim mesh") {
		t.Errorf("subset ran unrequested scenario:\n%s", out)
	}
}

func TestRunRejectsUnknownScenario(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "zigzag", tinyOpts()); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if err := run(&b, " ", tinyOpts()); err == nil {
		t.Fatal("empty scenario list accepted")
	}
}

// TestSpecReproducesLargeTopoGolden: the committed scenario.Spec JSON
// files drive the exact pipeline the experiment drivers run, so
// `netsim -spec testdata/scalefree.json` + `-spec testdata/fattree.json`
// must reproduce internal/experiments/testdata/largetopo.golden byte
// for byte — the declarative layer and the driver layer are one.
func TestSpecReproducesLargeTopoGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("replication-heavy golden in -short mode")
	}
	var b strings.Builder
	for _, f := range []string{"scalefree.json", "fattree.json"} {
		if err := scen.RunFile(&b, filepath.Join("testdata", f)); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "internal", "experiments", "testdata", "largetopo.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Fatalf("spec-driven output drifted from largetopo.golden:\n--- got ---\n%s\n--- want ---\n%s",
			b.String(), want)
	}
}

// TestSpecAuditEndToEnd: acceptance for the one-call pipeline — a
// single Spec JSON emits simulated rates next to the max-min benchmark
// and the four fairness-property verdicts.
func TestSpecAuditEndToEnd(t *testing.T) {
	var b strings.Builder
	if err := scen.RunFile(&b, filepath.Join("testdata", "audit.json")); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"max-min fair rate", "achieved mean", "fairness gap",
		"max-min benchmark properties", "simulated-rate properties",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("audit spec output missing %q:\n%s", want, out)
		}
	}
}
