package main

import (
	"strings"
	"testing"
)

func TestRunAnalyticFigures(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "1,2,3,4,s3,5,6,markov", true); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Figure 1", "Figure 2", "Figure 3(a)", "Figure 3(b)", "Figure 4",
		"Section 3 example", "Figure 5", "Figure 6", "Markov analysis",
		"max-min fair allocation exists: false",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRunQuickSimulationPanel(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "8a", true); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Figure 8", "Coordinated", "Uncoordinated", "Deterministic"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "99", true); err == nil {
		t.Fatal("unknown figure accepted")
	}
}
