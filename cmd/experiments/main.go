// Command experiments regenerates every table and figure of the paper's
// evaluation (see EXPERIMENTS.md for the index and expected shapes).
//
// Usage:
//
//	experiments -fig all -quick     # everything, reduced simulation sizes
//	experiments -fig 8a             # one panel at full paper fidelity
//	experiments -fig 1,2,3,4,s3     # the analytic examples
//
// Figures: 1 2 3 4 s3 5 6 markov 8a 8b all
//
// With -spec, runs a declarative scenario.Spec JSON file through the
// scenario layer instead (see docs/SCENARIOS.md); with -sweep, runs a
// declarative scenario.Sweep parameter study and emits its CSV/JSON
// result table (see docs/SWEEPS.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mlfair/internal/cliutil"
	"mlfair/internal/experiments"
)

func main() {
	os.Exit(realMain())
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	return 1
}

func realMain() int {
	fig := flag.String("fig", "all", "comma-separated figures to regenerate: 1 2 3 4 s3 5 6 markov 8a 8b all ext-latency ext-priority ext-weighted ext-converge ext-tree ext-churn ext")
	quick := flag.Bool("quick", false, "reduced simulation sizes for Figure 8 (40 receivers, 20k packets, 5 trials)")
	d := cliutil.RegisterDeclarative(flag.CommandLine)
	ob := cliutil.RegisterObservability(flag.CommandLine, "experiments")
	flag.Parse()

	if err := ob.Start(); err != nil {
		return fail(err)
	}
	ran, err := d.RunObserved(os.Stdout, ob)
	if !ran {
		err = run(os.Stdout, *fig, *quick)
	}
	if serr := ob.Stop(); err == nil {
		err = serr
	}
	if err != nil {
		return fail(err)
	}
	return 0
}

func extOptions(quick bool) experiments.ExtensionOptions {
	o := experiments.DefaultExtensionOptions()
	if quick {
		o.Receivers, o.Packets, o.Trials = 20, 10000, 3
	}
	return o
}

func run(w io.Writer, figs string, quick bool) error {
	o := experiments.PaperFigure8Options()
	if quick {
		o = experiments.QuickFigure8Options()
	}
	drivers := map[string]func(io.Writer) error{
		"1":      experiments.Figure1,
		"2":      experiments.Figure2,
		"3":      experiments.Figure3,
		"4":      experiments.Figure4,
		"s3":     experiments.Section3Example,
		"5":      experiments.Figure5,
		"6":      experiments.Figure6,
		"markov": experiments.MarkovAnalysis,
		"8a":     func(w io.Writer) error { return experiments.Figure8(w, 0.0001, o) },
		"8b":     func(w io.Writer) error { return experiments.Figure8(w, 0.05, o) },
		"ext-latency": func(w io.Writer) error {
			return experiments.LeaveLatency(w, extOptions(quick))
		},
		"ext-priority": func(w io.Writer) error {
			return experiments.PriorityDrop(w, extOptions(quick))
		},
		"ext-weighted": experiments.WeightedFairness,
		"ext-converge": func(w io.Writer) error {
			return experiments.Convergence(w, extOptions(quick))
		},
		"ext-tree": func(w io.Writer) error {
			return experiments.TreeRedundancy(w, extOptions(quick))
		},
		"ext-churn": func(w io.Writer) error {
			return experiments.Churn(w, 424242)
		},
	}
	drivers["ext"] = func(w io.Writer) error {
		for _, name := range []string{"ext-weighted", "ext-latency", "ext-priority", "ext-converge", "ext-tree", "ext-churn"} {
			if err := drivers[name](w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	if figs == "all" {
		if err := experiments.RunAll(w, quick); err != nil {
			return err
		}
		return drivers["ext"](w)
	}
	for _, f := range strings.Split(figs, ",") {
		f = strings.TrimSpace(f)
		d, ok := drivers[f]
		if !ok {
			return fmt.Errorf("unknown figure %q (want 1 2 3 4 s3 5 6 markov 8a 8b all)", f)
		}
		if err := d(w); err != nil {
			return fmt.Errorf("figure %s: %w", f, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
