// Package mlfair's benchmark suite: one benchmark per paper table/figure
// regenerator plus the ablations called out in DESIGN.md (closed-form vs
// bisection allocator steps, closed-form vs Monte-Carlo redundancy,
// dense vs power-iteration stationary solves, per-protocol simulator
// throughput).
//
// Run with: go test -bench=. -benchmem
package mlfair

import (
	"io"
	"math/rand/v2"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"

	"mlfair/internal/capsim"
	"mlfair/internal/experiments"
	"mlfair/internal/fairness"
	"mlfair/internal/layering"
	"mlfair/internal/markov"
	"mlfair/internal/maxmin"
	"mlfair/internal/netmodel"
	"mlfair/internal/netsim"
	"mlfair/internal/obs"
	"mlfair/internal/protocol"
	"mlfair/internal/redundancy"
	"mlfair/internal/scenario"
	"mlfair/internal/sim"
	"mlfair/internal/sweepexec"
	"mlfair/internal/topology"
	"mlfair/internal/treesim"
)

// --- Figure 1 / Figure 2: allocation of the paper's example networks ---

func BenchmarkFigure1Allocation(b *testing.B) {
	net := topology.Figure1().Network
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := maxmin.Allocate(net); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2Allocation(b *testing.B) {
	net := topology.Figure2(netmodel.SingleRate).Network
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := maxmin.Allocate(net); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Allocator ablation: closed-form step vs generic bisection ---

func randomNet() *netmodel.Network {
	rng := rand.New(rand.NewPCG(5, 5))
	o := topology.DefaultRandomOptions()
	o.Nodes, o.Sessions, o.MaxReceivers = 30, 10, 6
	return topology.RandomNetwork(rng, o)
}

func BenchmarkAllocateClosedForm(b *testing.B) {
	net := randomNet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := maxmin.Allocate(net); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllocateGenericBisection(b *testing.B) {
	net := randomNet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := maxmin.AllocateGeneric(net); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFairnessCheck(b *testing.B) {
	net := randomNet()
	res, err := maxmin.Allocate(net)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fairness.Check(res.Alloc)
	}
}

// --- Figure 3: receiver-removal re-allocation ---

func BenchmarkFigure3Removal(b *testing.B) {
	net := topology.Figure3a().Network
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		after, err := net.RemoveReceiver(netmodel.ReceiverID{Session: 2, Receiver: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := maxmin.Allocate(after); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Section 3 example: fixed-layer feasible-set search ---

func BenchmarkSection3FixedLayerSearch(b *testing.B) {
	net := topology.SingleLink(6).Network
	schemes := []layering.Scheme{layering.Uniform(3, 2), layering.Uniform(2, 3)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := layering.FindMaxMinFixed(net, schemes); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 4: allocation under a redundancy function ---

func BenchmarkFigure4RedundantAllocation(b *testing.B) {
	net := topology.Figure4(2).Network
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := maxmin.Allocate(net); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 5: redundancy closed form vs Monte Carlo (ablation) ---

func fig5Rates() []float64 {
	rates := make([]float64, 100)
	for i := range rates {
		rates[i] = 0.1
	}
	return rates
}

func BenchmarkFigure5Redundancy(b *testing.B) {
	rates := fig5Rates()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		redundancy.SingleLayer(rates, 1)
	}
}

func BenchmarkFigure5MonteCarlo(b *testing.B) {
	rates := fig5Rates()
	rng := rand.New(rand.NewPCG(9, 9))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		redundancy.MonteCarloLinkRate(rates, 1, 100, 10, rng)
	}
}

// --- Figure 6: constrained fair-rate curve ---

func BenchmarkFigure6FairRate(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := 1.0; v <= 10; v += 0.5 {
			redundancy.NormalizedFairRate(0.05, v)
		}
	}
}

// --- Figure 7a / Markov analysis: stationary solves (ablation) ---

func uncoordChain(b *testing.B) *markov.Model {
	m, err := markov.BuildStar(protocol.Uncoordinated, markov.StarParams{
		Layers: 5, SharedLoss: 0.001, Loss1: 0.05, Loss2: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkMarkovSolveDense(b *testing.B) {
	m := uncoordChain(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarkovSolvePower(b *testing.B) {
	m := uncoordChain(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SolvePower(1e-10, 100000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 8: one sweep point per protocol (reduced size), and raw
// simulator throughput ---

func benchFigure8Point(b *testing.B, kind protocol.Kind) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := experiments.Figure8Point(kind, 0.0001, 0.04, experiments.Figure8Options{
			Receivers: 100, Packets: 20000, Trials: 2, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8PointCoordinated(b *testing.B)   { benchFigure8Point(b, protocol.Coordinated) }
func BenchmarkFigure8PointUncoordinated(b *testing.B) { benchFigure8Point(b, protocol.Uncoordinated) }
func BenchmarkFigure8PointDeterministic(b *testing.B) { benchFigure8Point(b, protocol.Deterministic) }

func BenchmarkSimulatorPacketThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := sim.Run(sim.Config{
			Layers: 8, Receivers: 100, SharedLoss: 0.0001,
			IndependentLoss: 0.04, Protocol: protocol.Deterministic,
			Packets: 100000, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(100000) // report packets/sec as MB/s-style rate
}

// --- Whole-figure regenerators (quick settings) ---

func BenchmarkExperimentFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure5(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExperimentFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure6(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExperimentMarkovAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.MarkovAnalysis(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension benches: tree simulation and closed-loop convergence ---

func BenchmarkTreeSimulation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := treesim.Run(treesim.Config{
			Tree: treesim.Binary(4, 0.02), Layers: 8,
			Protocol: protocol.Coordinated, Packets: 50000, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClosedLoopSimulation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := capsim.Run(capsim.Config{
			SharedCapacity: 24, Packets: 50000, Seed: uint64(i),
			Sessions: []capsim.SessionConfig{
				{Protocol: protocol.Coordinated, Layers: 8, FanoutCapacities: []float64{2, 8, 64}},
				{Protocol: protocol.Coordinated, Layers: 8, FanoutCapacities: []float64{64}},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- netsim: the general engine on its headline scenarios ---

// benchNetsimRun drives one engine config through b.N runs and reports
// the engine's throughput currency — events/sec (transmissions, event
// pops, link admissions, receiver deliveries) — plus steady-state
// allocs/event measured over the whole loop (engine construction
// amortizes into it, so the target "~0 allocs per event" is visible
// directly).
func benchNetsimRun(b *testing.B, cfg netsim.Config) {
	b.Helper()
	b.ReportAllocs()
	var events int64
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		res, err := netsim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	if events > 0 {
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
		b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(events), "allocs/event")
	}
}

func BenchmarkNetsimLargeStar(b *testing.B) {
	cfg, err := netsim.Star(200, 0.0001, 0.04,
		netsim.SessionConfig{Protocol: protocol.Deterministic, Layers: 8}, 50000, 1)
	if err != nil {
		b.Fatal(err)
	}
	benchNetsimRun(b, cfg)
}

// BenchmarkNetsimLargeStarProbed is BenchmarkNetsimLargeStar with the
// streaming probe on (256-packet windows over 200 receivers): the
// probe's per-event cost — and that allocs/event stays ~0 with it
// enabled — reads as the delta against the unprobed benchmark, and the
// benchjson -check allocs/event gate pins it.
func BenchmarkNetsimLargeStarProbed(b *testing.B) {
	cfg, err := netsim.Star(200, 0.0001, 0.04,
		netsim.SessionConfig{Protocol: protocol.Deterministic, Layers: 8}, 50000, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Probe = &netsim.ProbeConfig{PacketWindow: 256}
	benchNetsimRun(b, cfg)
}

// BenchmarkNetsimLargeStarInstrumented is BenchmarkNetsimLargeStar
// with an EngineStats sink attached: the instrumentation's whole cost
// is one flush of atomic adds per run, so events/sec must hold within
// 2% of the uninstrumented twin and allocs/event must not move. CI
// pins both via benchjson's -overhead pair gate, which compares the
// twins within the same run and therefore needs no committed baseline.
func BenchmarkNetsimLargeStarInstrumented(b *testing.B) {
	cfg, err := netsim.Star(200, 0.0001, 0.04,
		netsim.SessionConfig{Protocol: protocol.Deterministic, Layers: 8}, 50000, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Stats = &netsim.EngineStats{}
	benchNetsimRun(b, cfg)
}

func BenchmarkNetsimDeepTree(b *testing.B) {
	cfg, err := treesim.NetsimConfig(treesim.Config{
		Tree: treesim.Binary(7, 0.02), Layers: 8,
		Protocol: protocol.Coordinated, Packets: 50000, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchNetsimRun(b, cfg)
}

func BenchmarkNetsimMultiSessionMesh(b *testing.B) {
	cfg, _, err := netsim.Mesh(4, 8, netsim.LinkSpec{Kind: netsim.Capacity, Capacity: 40},
		0.01, netsim.SessionConfig{Protocol: protocol.Coordinated, Layers: 8}, 50000, 1)
	if err != nil {
		b.Fatal(err)
	}
	benchNetsimRun(b, cfg)
}

// largeTopoBenchConfig builds the capacity-coupled mixed-protocol
// config the large-topology scenarios run (see experiments.NetsimScaleFree).
func largeTopoBenchConfig(b *testing.B, net *netmodel.Network, packets int) netsim.Config {
	b.Helper()
	cfg := netsim.Config{
		Network:  net,
		Links:    netsim.CapacityLinks(net.NumLinks()),
		Sessions: make([]netsim.SessionConfig, net.NumSessions()),
		Packets:  packets,
	}
	kinds := protocol.Kinds()
	for i := range cfg.Sessions {
		cfg.Sessions[i] = netsim.SessionConfig{Protocol: kinds[i%len(kinds)], Layers: 8}
	}
	return cfg
}

// BenchmarkNetsimScaleFree exercises the engine at hundreds of links x
// dozens of sessions on a power-law graph (150 nodes, ~300 links, 24
// mixed-protocol sessions).
func BenchmarkNetsimScaleFree(b *testing.B) {
	net, err := topology.ScaleFree(rand.New(rand.NewPCG(5, 5)), topology.DefaultScaleFreeOptions())
	if err != nil {
		b.Fatal(err)
	}
	benchNetsimRun(b, largeTopoBenchConfig(b, net, 100000))
}

// BenchmarkNetsimFatTree exercises the engine on the k=6 fat-tree
// fabric (54 hosts, 162 links, 24 mixed-protocol sessions).
func BenchmarkNetsimFatTree(b *testing.B) {
	net, err := topology.FatTree(rand.New(rand.NewPCG(5, 5)), topology.DefaultFatTreeOptions())
	if err != nil {
		b.Fatal(err)
	}
	benchNetsimRun(b, largeTopoBenchConfig(b, net, 100000))
}

// BenchmarkNetsimScaleFreeDense doubles the preferential-attachment
// degree (Attach 4, ~600 links): more chords mean bushier trees and
// wider per-node fan-out, stressing the wide-child descent path.
func BenchmarkNetsimScaleFreeDense(b *testing.B) {
	opts := topology.DefaultScaleFreeOptions()
	opts.Attach = 4
	net, err := topology.ScaleFree(rand.New(rand.NewPCG(5, 5)), opts)
	if err != nil {
		b.Fatal(err)
	}
	benchNetsimRun(b, largeTopoBenchConfig(b, net, 100000))
}

// BenchmarkNetsimFatTreeWide scales the fabric to k=8 (128 hosts, 384
// links): deeper receiver blocks and more links per session exercise
// the per-link fold and the capacity-admission table at size.
func BenchmarkNetsimFatTreeWide(b *testing.B) {
	opts := topology.DefaultFatTreeOptions()
	opts.K = 8
	net, err := topology.FatTree(rand.New(rand.NewPCG(5, 5)), opts)
	if err != nil {
		b.Fatal(err)
	}
	benchNetsimRun(b, largeTopoBenchConfig(b, net, 100000))
}

// --- netsim: planetary scale (session-sharded, memory-planned) ---

// benchNetsimPlanetary drives the planetary topology (link-disjoint
// regional backbones, PoP fan-out, 64 receivers per PoP) through
// benchNetsimRun with session-sharded execution, then reports the
// process's kernel peak RSS. The RSS metric is a process-wide high
// water, so the suite orders these benchmarks smallest-first and CI
// budgets the largest via benchjson -max-rss-bytes.
func benchNetsimPlanetary(b *testing.B, po topology.PlanetaryOptions, packets, shards int) {
	b.Helper()
	net, firstAccess, err := topology.Planetary(rand.New(rand.NewPCG(5, 5)), po)
	if err != nil {
		b.Fatal(err)
	}
	links := make([]netsim.LinkSpec, net.NumLinks())
	for j := 0; j < firstAccess; j++ {
		links[j] = netsim.LinkSpec{Kind: netsim.Capacity}
	}
	kinds := protocol.Kinds()
	sess := make([]netsim.SessionConfig, net.NumSessions())
	for i := range sess {
		sess[i] = netsim.SessionConfig{Protocol: kinds[i%len(kinds)], Layers: 8}
	}
	benchNetsimRun(b, netsim.Config{
		Network: net, Links: links, Sessions: sess,
		Packets: packets, Shards: shards,
	})
	b.ReportMetric(float64(obs.ReadPeakRSS()), "peak-RSS-bytes")
}

// BenchmarkNetsimPlanetary1M is the 2^20-receiver single run: 8 regions
// x 2048 PoPs x 64 receivers (131k links). Construction amortizes into
// the loop, so events/sec here is the end-to-end figure the ROADMAP's
// intra-run-scale target is gated on.
func BenchmarkNetsimPlanetary1M(b *testing.B) {
	benchNetsimPlanetary(b, topology.PlanetaryOptions1M(), 16384, runtime.NumCPU())
}

// planetaryOptions1MOneRegion is the single-session 2^20-receiver
// shape: one region, 16384 PoPs x 64 receivers on a 128-router core.
// Session-group sharding cannot split one session, so any speedup here
// comes purely from the intra-session subtree fan-out (the auto cut
// frontier engages on the per-PoP receiver population).
func planetaryOptions1MOneRegion() topology.PlanetaryOptions {
	o := topology.PlanetaryOptions1M()
	o.Regions = 1
	o.PoPs = 16384
	return o
}

// BenchmarkNetsimPlanetary1MSubtree measures the multi-core execution
// of one giant session: 2^20 receivers in a single tree, subtree-
// sharded across the machine's cores. Its events/sec against the
// sequential twin below is the shard-scaling figure CI derives as a
// "speedup" metric (benchjson -speedup); the Result is byte-identical
// to the twin's for any shard count.
func BenchmarkNetsimPlanetary1MSubtree(b *testing.B) {
	benchNetsimPlanetary(b, planetaryOptions1MOneRegion(), 16384, runtime.NumCPU())
}

// BenchmarkNetsimPlanetary1MSubtreeSeq is the sequential twin: the
// identical single-session tree with Shards = 0, one event loop, no
// partition. Only the execution strategy differs.
func BenchmarkNetsimPlanetary1MSubtreeSeq(b *testing.B) {
	benchNetsimPlanetary(b, planetaryOptions1MOneRegion(), 16384, 0)
}

// BenchmarkNetsimPlanetary10M is the 10^7-receiver single run: 8
// regions x 20480 PoPs x 64 receivers (1.3M links). The interesting
// number is peak-RSS-bytes — the run must fit the documented planetary
// memory budget (docs/SCALE.md) on a stock CI runner.
func BenchmarkNetsimPlanetary10M(b *testing.B) {
	benchNetsimPlanetary(b, topology.PlanetaryOptions10M(), 4096, runtime.NumCPU())
}

// BenchmarkNetsimParallelRunner measures replication-runner scaling:
// compare ns/op across -cpu settings (the work per op is fixed at 8
// replications, so ideal scaling halves ns/op per doubling).
func BenchmarkNetsimParallelRunner(b *testing.B) {
	cfg, err := netsim.Star(100, 0.0001, 0.04,
		netsim.SessionConfig{Protocol: protocol.Deterministic, Layers: 8}, 20000, 9)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var events int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := netsim.StreamReplications(cfg, 8, 0, func(_ int, r *netsim.Result) error {
			events += r.Events
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if events > 0 {
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	}
}

func BenchmarkWeightedAllocation(b *testing.B) {
	net := randomNet()
	w := maxmin.UniformWeights(net)
	for i := range w {
		for k := range w[i] {
			w[i][k] = 1 + float64((i+k)%3)
		}
	}
	// Single-rate sessions need uniform weights.
	for i, s := range net.Sessions() {
		if s.Type == netmodel.SingleRate {
			for k := range w[i] {
				w[i][k] = 2
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := maxmin.AllocateWeighted(net, w); err != nil {
			b.Fatal(err)
		}
	}
}

// --- sweepexec: the distributed sweep scheduler ---

// benchSweepScheduler drives a small sweep through sweepexec.Run with
// the given checkpoint setup, reporting the engine's events/sec so the
// checkpointing twin reads as a throughput delta. (Deliberately no
// allocs/event metric: the scheduler's per-point bookkeeping is not
// per-event work, so the engine's allocation budget does not apply.)
func benchSweepScheduler(b *testing.B, checkpoint bool) {
	b.Helper()
	sw := &scenario.Sweep{
		Base: scenario.Spec{
			Topology:     scenario.TopologySpec{Kind: "star", Receivers: 100},
			Sessions:     []scenario.SessionSpec{{Protocol: "deterministic", Layers: 8}},
			DefaultLink:  &scenario.LinkSpec{Kind: "bernoulli", Loss: 0.02},
			Packets:      250000,
			Seed:         77,
			Replications: scenario.ReplicationSpec{N: 8, Workers: 2},
		},
		Axes: []scenario.Axis{
			{Field: "defaultLink.loss", Values: []any{0.01, 0.05}},
		},
		Outputs: []string{"goodput"},
	}
	root := b.TempDir()
	var events int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := &netsim.EngineStats{}
		opts := sweepexec.Options{Observe: &scenario.Observe{Stats: st}}
		if checkpoint {
			opts.CheckpointDir = filepath.Join(root, strconv.Itoa(i))
		}
		if _, err := sweepexec.Run(sw, opts); err != nil {
			b.Fatal(err)
		}
		events += st.Events.Load()
	}
	b.StopTimer()
	if events > 0 {
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	}
}

// BenchmarkNetsimSweepScheduler is the sweepexec baseline: the
// streaming point scheduler with no durability: 2 points x 8 heavy
// replications per op, so the fixed per-commit file I/O of the
// checkpointed twin reads as a small relative delta.
func BenchmarkNetsimSweepScheduler(b *testing.B) {
	benchSweepScheduler(b, false)
}

// BenchmarkNetsimSweepSchedulerCheckpointed runs the identical sweep
// with checkpointing at the default per-point granularity — spill
// shard + checkpoint rename as each point completes. CI's benchjson
// -overhead pair gate pins the durability cost at <=2% events/sec
// against the baseline twin within the same run.
func BenchmarkNetsimSweepSchedulerCheckpointed(b *testing.B) {
	benchSweepScheduler(b, true)
}
