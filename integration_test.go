// Cross-module integration tests: whole-pipeline runs that exercise the
// topology generators, the allocator, the fairness checkers, the
// redundancy measures, the exporters and the experiment drivers
// together, at larger scales than the per-package unit tests.
package mlfair

import (
	"io"
	"math/rand/v2"
	"strings"
	"testing"
	"time"

	"mlfair/internal/experiments"
	"mlfair/internal/fairness"
	"mlfair/internal/maxmin"
	"mlfair/internal/netmodel"
	"mlfair/internal/redundancy"
	"mlfair/internal/routing"
	"mlfair/internal/topology"
	"mlfair/internal/vecorder"
)

// TestPipelineRandomNetworks runs the full analysis pipeline over many
// random topologies: route, allocate, verify feasibility + saturation,
// check Theorem 2, measure redundancy, export DOT.
func TestPipelineRandomNetworks(t *testing.T) {
	rng := rand.New(rand.NewPCG(201, 202))
	opts := topology.DefaultRandomOptions()
	for trial := 0; trial < 40; trial++ {
		net := topology.RandomNetwork(rng, opts)
		res, err := maxmin.Allocate(net)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := res.Alloc.Feasible(); err != nil {
			t.Fatalf("trial %d infeasible: %v", trial, err)
		}
		if id, ok := maxmin.CheckSaturation(res.Alloc); !ok {
			t.Fatalf("trial %d: %v not saturated", trial, id)
		}
		if m := fairness.CheckTheorem2(res.Alloc); !m.AllHold() {
			t.Fatalf("trial %d: %s", trial, m)
		}
		// Efficient sessions have redundancy 1 wherever defined.
		for i := 0; i < net.NumSessions(); i++ {
			for j := 0; j < net.NumLinks(); j++ {
				if r, ok := redundancy.OfAllocation(res.Alloc, i, j); ok && !netmodel.Eq(r, 1) {
					t.Fatalf("trial %d: efficient session redundancy %v", trial, r)
				}
			}
		}
		var b strings.Builder
		if err := netmodel.WriteDOT(&b, net, res.Alloc); err != nil || b.Len() == 0 {
			t.Fatalf("trial %d: DOT export failed: %v", trial, err)
		}
	}
}

// TestLargeNetworkAllocationScales: a 150-node, 40-session network
// allocates quickly and correctly.
func TestLargeNetworkAllocationScales(t *testing.T) {
	rng := rand.New(rand.NewPCG(203, 204))
	opts := topology.RandomOptions{
		Nodes: 150, ExtraLinks: 60, Sessions: 40, MaxReceivers: 8,
		CapMin: 1, CapMax: 50, SingleRateProb: 0.4, KappaProb: 0.2, KappaMax: 20,
	}
	net := topology.RandomNetwork(rng, opts)
	start := time.Now()
	res, err := maxmin.Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("allocation took %v", d)
	}
	if err := res.Alloc.Feasible(); err != nil {
		t.Fatal(err)
	}
	if m := fairness.CheckTheorem2(res.Alloc); !m.AllHold() {
		t.Fatalf("Theorem 2 failed at scale: %s", m)
	}
	// Every session remains a routed tree.
	for i := 0; i < net.NumSessions(); i++ {
		if err := routing.TreeCheck(net, i); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWeightedConsistentWithUnweightedOrdering: weighting by a common
// constant leaves the allocation unchanged.
func TestWeightedConsistentWithUnweightedOrdering(t *testing.T) {
	rng := rand.New(rand.NewPCG(205, 206))
	for trial := 0; trial < 20; trial++ {
		net := topology.RandomNetwork(rng, topology.DefaultRandomOptions())
		plain, err := maxmin.Allocate(net)
		if err != nil {
			t.Fatal(err)
		}
		w := maxmin.UniformWeights(net)
		for i := range w {
			for k := range w[i] {
				w[i][k] = 2.5 // common scale
			}
		}
		scaled, err := maxmin.AllocateWeighted(net, w)
		if err != nil {
			t.Fatal(err)
		}
		pv := plain.Alloc.OrderedVector()
		sv := scaled.Alloc.OrderedVector()
		for i := range pv {
			if d := pv[i] - sv[i]; d > 1e-6 || d < -1e-6 {
				t.Fatalf("common-scale weights changed rates: %v vs %v", pv, sv)
			}
		}
	}
}

// TestUpgradeChainIsMonotone: full Lemma-3 chains — upgrading sessions
// one at a time yields a ≼_m-monotone sequence ending at the Theorem-1
// regime.
func TestUpgradeChainIsMonotone(t *testing.T) {
	rng := rand.New(rand.NewPCG(207, 208))
	opts := topology.DefaultRandomOptions()
	opts.SingleRateProb = 1
	for trial := 0; trial < 20; trial++ {
		net := topology.RandomNetwork(rng, opts)
		var prev []float64
		types := make([]netmodel.SessionType, net.NumSessions())
		for step := 0; step <= net.NumSessions(); step++ {
			for i := range types {
				types[i] = netmodel.SingleRate
				if i < step {
					types[i] = netmodel.MultiRate
				}
			}
			n, err := net.WithSessionTypes(types)
			if err != nil {
				t.Fatal(err)
			}
			res, err := maxmin.Allocate(n)
			if err != nil {
				t.Fatal(err)
			}
			vec := res.Alloc.OrderedVector()
			if prev != nil && !vecorder.LessEq(prev, vec) {
				t.Fatalf("trial %d step %d: not monotone", trial, step)
			}
			if step == net.NumSessions() {
				if rep := fairness.Check(res.Alloc); !rep.AllHold() {
					t.Fatalf("trial %d: final all-multi-rate network fails: %s", trial, rep.Summary())
				}
			}
			prev = vec
		}
	}
}

// TestRunAllQuickCompletes: the entire experiment suite runs end to end.
func TestRunAllQuickCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	if err := experiments.RunAll(io.Discard, true); err != nil {
		t.Fatal(err)
	}
}
