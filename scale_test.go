package mlfair

// Allocation-shape regression tests for the planetary-scale work: the
// netsim engine packs all per-receiver and per-(link,session) state
// into width-segregated slabs sized up front, so the NUMBER of heap
// allocations one run performs is a function of sessions and links
// (one slab per width class per session, a handful of per-engine
// rows), never of receivers. These tests pin that shape by measuring
// malloc counts at 10^4 vs 10^6 receivers — if someone reintroduces a
// per-receiver allocation, the big run's count explodes and the test
// names the ratio.

import (
	"math/rand/v2"
	"runtime"
	"testing"

	"mlfair/internal/netsim"
	"mlfair/internal/protocol"
	"mlfair/internal/topology"
)

// runMallocs counts the mallocs one sequential netsim.Run performs
// (engine construction + run + result fold; the network is prebuilt by
// the caller and does not count).
func runMallocs(t *testing.T, cfg netsim.Config) int64 {
	t.Helper()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := netsim.Run(cfg); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	return int64(after.Mallocs - before.Mallocs)
}

// TestStarRunAllocCountFlatInReceivers: the modified star at 10k vs 1M
// receivers (1 session; links scale with receivers, but per-link state
// is slab-packed too) must keep its malloc count within a small
// constant factor — 100x more receivers, ~1x the allocations.
func TestStarRunAllocCountFlatInReceivers(t *testing.T) {
	sc := netsim.SessionConfig{Protocol: protocol.Deterministic, Layers: 8}
	small, err := netsim.Star(10000, 0.0001, 0.04, sc, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := netsim.Star(1000000, 0.0001, 0.04, sc, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := runMallocs(t, small)
	b := runMallocs(t, big)
	if b > 3*a+512 {
		t.Fatalf("star malloc count scales with receivers: %d at 10k, %d at 1M", a, b)
	}
}

// TestPlanetaryRunAllocCountFlatInReceivers: the planetary topology at
// 8k vs 1M receivers (sessions fixed at 8; links scale with PoPs). The
// malloc count may grow with links — tree discovery builds one child
// list per internal node — but normalized by the link count it must
// stay flat, and it must come nowhere near the 128x receiver growth.
func TestPlanetaryRunAllocCountFlatInReceivers(t *testing.T) {
	build := func(pops int) netsim.Config {
		o := topology.PlanetaryOptions1M()
		o.PoPs = pops
		net, firstAccess, err := topology.Planetary(rand.New(rand.NewPCG(5, 5)), o)
		if err != nil {
			t.Fatal(err)
		}
		links := make([]netsim.LinkSpec, net.NumLinks())
		for j := 0; j < firstAccess; j++ {
			links[j] = netsim.LinkSpec{Kind: netsim.Capacity}
		}
		kinds := protocol.Kinds()
		sess := make([]netsim.SessionConfig, net.NumSessions())
		for i := range sess {
			sess[i] = netsim.SessionConfig{Protocol: kinds[i%len(kinds)], Layers: 8}
		}
		return netsim.Config{Network: net, Links: links, Sessions: sess, Packets: 256, Seed: 1}
	}
	cfgSmall := build(16) // 8*16*64   = 8192 receivers
	cfgBig := build(2048) // 8*2048*64 = 1048576 receivers
	a := runMallocs(t, cfgSmall)
	b := runMallocs(t, cfgBig)
	linkRatio := float64(cfgBig.Network.NumLinks()) / float64(cfgSmall.Network.NumLinks())
	if ratio := float64(b) / float64(a); ratio > 2*linkRatio {
		t.Fatalf("planetary malloc count outgrows links: %d at 8k, %d at 1M (ratio %.1f, links grew %.1fx)",
			a, b, ratio, linkRatio)
	} else if ratio > 32 {
		// Receivers grew 128x; anything in that neighborhood means a
		// per-receiver allocation crept back in.
		t.Fatalf("planetary malloc count tracks receivers: %d at 8k, %d at 1M (ratio %.1f)", a, b, ratio)
	}
}
